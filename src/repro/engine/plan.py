"""Query plans: DAGs of operators connected by queues and control channels.

Paper cross-reference: Figure 3 (section 3.1) draws the inter-operator
connection structure this module materialises -- a data queue carrying
pages of tuples and embedded punctuation downstream, paired with a
bidirectional out-of-band control channel for feedback punctuation --
and section 5 describes the NiagaraST deployment of it (operators as
schedulable units joined by queues).  Each ``connect`` call creates
exactly that pair: one :class:`~repro.stream.queues.DataQueue` plus one
:class:`~repro.stream.control.ControlChannel`.

Plans are engine-agnostic: the simulator, the threaded runtime and the
asyncio engine all consume the same validated plan (the registry in
:mod:`repro.engine.registry` resolves engines by name; see
``docs/engines.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.errors import PlanError
from repro.operators.base import Operator, OutputEdge, SourceOperator
from repro.stream.control import ControlChannel
from repro.stream.pages import DEFAULT_PAGE_SIZE
from repro.stream.queues import DataQueue

__all__ = [
    "QueryPlan",
    "ShardGroup",
    "edge_annotation",
    "render_describe",
    "render_dot",
]


@dataclass(frozen=True)
class ShardGroup:
    """IR record of one shard region inside a plan.

    A shard region is a subgraph replicated ``n`` ways between a
    :class:`~repro.operators.partition.Partition` (``partition``) and a
    :class:`~repro.operators.partition.ShardMerge` (``merge``), running
    over a stream key-partitioned on ``key``.  ``lanes[i]`` names the
    replica operators of lane ``i`` in topological order.  The record is
    pure bookkeeping -- data and control flow entirely through the plan's
    ordinary queues and channels -- but it is what lets the runtime roll
    metrics up per lane (skew reports) and the renderers draw the region
    as one unit.
    """

    name: str
    partition: str
    merge: str
    key: tuple[str, ...]
    n: int
    lanes: tuple[tuple[str, ...], ...]

    @property
    def members(self) -> tuple[str, ...]:
        """Every replica operator name, across all lanes."""
        return tuple(op for lane in self.lanes for op in lane)


def describe_region_lines(
    regions: Sequence[ShardGroup],
) -> list[str]:
    """The describe()-style trailer for a plan's shard regions.

    Empty when there are none, so unsharded plans render byte-identically
    to historical output.
    """
    lines: list[str] = []
    for region in regions:
        key = ", ".join(region.key)
        lines.append(
            f"  shard {region.name!r} x{region.n} by ({key}): "
            f"{region.partition} -> {region.merge}"
        )
        for index, lane in enumerate(region.lanes):
            lines.append(
                f"    lane {index}: {', '.join(lane) or '(direct)'}"
            )
    return lines


def checkpoint_capable(op_type: type) -> bool:
    """True when ``op_type`` overrides the operator snapshot seam.

    Capability is a property of the *class*: an operator that never
    overrides :meth:`~repro.operators.base.Operator.snapshot_state` has
    no state a checkpoint could carry.  The renderers use this for the
    opt-in ``checkpoints=`` annotation.
    """
    return op_type.snapshot_state is not Operator.snapshot_state


def checkpoint_annotation(op_type: type, enabled: bool) -> str:
    """`` ⌖`` when annotating and capable, else empty (output unchanged)."""
    return " ⌖" if enabled and checkpoint_capable(op_type) else ""


def render_describe(
    name: str,
    stages: list[tuple[str, str, list[str]]],
    regions: Sequence[ShardGroup] = (),
    fused: Sequence[tuple[str, list[tuple[str, str]]]] = (),
) -> str:
    """Shared topology-text renderer.

    ``stages`` rows are ``(op_name, type_name, targets)`` where each
    target is already formatted as ``consumer[port]``; ``regions`` are
    the plan's shard groups, rendered as a trailer.  ``fused`` rows are
    ``(composite_name, [(stage_name, stage_type), ...])`` for composites
    produced by the optimizer, rendered as their own trailer so the
    collapsed stages stay visible.  Used by both
    :meth:`QueryPlan.describe` and ``Flow.describe`` so the two surfaces
    cannot drift.
    """
    lines = [f"QueryPlan {name!r}:"]
    for op_name, type_name, targets in stages:
        rendered = ", ".join(targets) or "(sink)"
        lines.append(f"  {op_name} ({type_name}) -> {rendered}")
    for fused_name, members in fused:
        inner = " -> ".join(f"{s} ({t})" for s, t in members)
        lines.append(f"  fused {fused_name!r}: {inner}")
    lines.extend(describe_region_lines(regions))
    return "\n".join(lines)


def render_dot(
    name: str,
    nodes: list[tuple[str, str, bool, bool]],
    edges: list[tuple[str, str, int, int | None]],
    regions: Sequence[ShardGroup] = (),
    fused: Sequence[tuple[str, list[tuple[str, str]]]] = (),
) -> str:
    """Shared Graphviz (DOT) renderer.

    ``nodes`` rows are ``(op_name, type_name, is_source, is_sink)``;
    ``edges`` rows are ``(producer, consumer, port, capacity)``.  Sources
    are drawn as ellipses, sinks with doubled borders, everything else as
    boxes; edge labels carry the consumer port.  Backpressure-capable
    edges (``capacity`` set) additionally carry a ``cap=N`` label and a
    tee arrowtail -- the queue can push back on its producer.  Shard
    ``regions`` render their replica operators inside a dashed cluster
    labelled with the fanout and partition key.  ``fused`` rows
    (``(composite_name, [(stage_name, stage_type), ...])``) render each
    optimizer composite as a dashed cluster of its stages -- node names
    ``composite::stage`` -- with the collapsed hops drawn dashed inside;
    callers remap external edges to the head/tail stage nodes.  Paste
    into ``dot -Tpng`` or any DOT viewer.  Used by both
    :meth:`QueryPlan.to_dot` and ``Flow.to_dot``.
    """
    def quote(text: str) -> str:
        # Escape quotes only: labels deliberately embed DOT's \n.
        return '"' + text.replace('"', '\\"') + '"'

    def node_statement(row: tuple[str, str, bool, bool]) -> str:
        op_name, type_name, is_source, is_sink = row
        label = f"{op_name}\\n{type_name}"
        attrs = [f"label={quote(label)}"]
        if is_source:
            attrs.append("shape=ellipse")
        elif is_sink:
            attrs.append("peripheries=2")
        return f"{quote(op_name)} [{', '.join(attrs)}];"

    member_of: dict[str, ShardGroup] = {}
    for region in regions:
        for member in region.members:
            member_of[member] = region

    lines = [
        f"digraph {quote(name)} {{",
        "  rankdir=LR;",
        "  node [shape=box];",
    ]
    for row in nodes:
        if row[0] not in member_of:
            lines.append(f"  {node_statement(row)}")
    for index, region in enumerate(regions):
        members = set(region.members)
        key = ", ".join(region.key)
        lines.append(f"  subgraph cluster_shard_{index} {{")
        lines.append(
            f"    label={quote(f'shard {region.name} x{region.n} by ({key})')};"
        )
        lines.append("    style=dashed;")
        for row in nodes:
            if row[0] in members:
                lines.append(f"    {node_statement(row)}")
        lines.append("  }")
    for index, (fused_name, stage_rows) in enumerate(fused):
        lines.append(f"  subgraph cluster_fused_{index} {{")
        lines.append(f"    label={quote(f'fused {fused_name}')};")
        lines.append("    style=dashed;")
        for stage_name, stage_type in stage_rows:
            node = f"{fused_name}::{stage_name}"
            label = f"{stage_name}\\n{stage_type}"
            lines.append(f"    {quote(node)} [label={quote(label)}];")
        for (a, _), (b, _) in zip(stage_rows, stage_rows[1:]):
            lines.append(
                f"    {quote(f'{fused_name}::{a}')} -> "
                f"{quote(f'{fused_name}::{b}')} [style=dashed];"
            )
        lines.append("  }")
    for producer, consumer, port, capacity in edges:
        label = f"[{port}]"
        attrs = [f"label={quote(label)}"]
        if capacity is not None:
            attrs[0] = f"label={quote(f'{label} cap={capacity}')}"
            attrs.append("dir=both, arrowtail=tee")
        lines.append(
            f"  {quote(producer)} -> {quote(consumer)}"
            f" [{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def edge_annotation(capacity: int | None) -> str:
    """The describe()-style suffix for one edge's queue capacity.

    Empty for unbounded edges, so plans without backpressure render
    byte-identically to historical output.
    """
    return f" (cap={capacity})" if capacity is not None else ""


class QueryPlan:
    """A named collection of operators and their connections."""

    def __init__(self, name: str = "plan") -> None:
        self.name = name
        self._operators: dict[str, Operator] = {}
        self._edges: list[OutputEdge] = []
        self._shard_groups: list[ShardGroup] = []

    # -- construction ------------------------------------------------------------

    def add(self, operator: Operator) -> Operator:
        """Register an operator; names must be unique within the plan."""
        if operator.name in self._operators:
            raise PlanError(
                f"plan {self.name!r} already has an operator named "
                f"{operator.name!r}"
            )
        self._operators[operator.name] = operator
        return operator

    def connect(
        self,
        producer: Operator,
        consumer: Operator,
        *,
        port: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
        capacity: int | None = None,
        low_water: int | None = None,
    ) -> OutputEdge:
        """Wire producer -> consumer[port] with a fresh queue + channel.

        ``capacity`` bounds the edge's data queue (high-water mark in
        elements) and opts the edge into runtime backpressure;
        ``low_water`` overrides the relief mark (default ``capacity //
        2``).  Unbounded (the default) edges behave exactly as before.

        Duplicate wiring of the same ``(consumer, port)`` is rejected up
        front -- before either endpoint is mutated -- so a bad ``connect``
        can never leave a producer holding a dangling output edge into a
        queue nobody drains.
        """
        if not 0 <= port < consumer.n_inputs:
            raise PlanError(
                f"{consumer.name}: input port {port} out of range "
                f"(operator has {consumer.n_inputs} inputs)"
            )
        if consumer.inputs[port] is not None:
            raise PlanError(
                f"plan {self.name!r}: input port {port} of "
                f"{consumer.name!r} is already connected "
                f"(from {consumer.inputs[port].producer!r})"
            )
        for op in (producer, consumer):
            if op.name not in self._operators:
                self.add(op)
        edge_name = f"{producer.name}->{consumer.name}[{port}]"
        queue = DataQueue(
            edge_name, page_size=page_size,
            capacity=capacity, low_water=low_water,
        )
        control = ControlChannel(edge_name)
        edge = OutputEdge(queue, control, consumer, port)
        producer.attach_output(edge)
        consumer.attach_input(port, queue, control, producer)
        self._edges.append(edge)
        return edge

    def connect_like(
        self,
        producer: Operator,
        consumer: Operator,
        like: OutputEdge,
        *,
        port: int | None = None,
    ) -> OutputEdge:
        """Wire producer -> consumer carrying ``like``'s queue settings.

        Optimizer rewrites replace an edge's endpoint but must not change
        the edge's *queue configuration*: a bounded, backpressure-capable
        edge (``capacity``/``low_water``) or a custom ``page_size`` that
        silently reverted to defaults would alter runtime behaviour in a
        way no equivalence harness at default settings could see.  This
        is the rewrite-safe variant of :meth:`connect`: page size,
        capacity and low-water mark all come from ``like``'s queue.
        """
        queue = like.queue
        return self.connect(
            producer,
            consumer,
            port=like.consumer_port if port is None else port,
            page_size=queue.page_size,
            capacity=queue.capacity,
            low_water=queue.low_water if queue.capacity is not None else None,
        )

    def disconnect(self, edge: OutputEdge) -> None:
        """Unwire one plan edge (the optimizer's rewrite primitive).

        Removes the edge from its producer's outputs, frees the
        consumer's input port, and drops the edge from the plan's edge
        list.  Only edges created by :meth:`connect` qualify.
        """
        producer = next(
            (
                op
                for op in self._operators.values()
                if edge in op.outputs
            ),
            None,
        )
        if producer is None or edge not in self._edges:
            raise PlanError(
                f"plan {self.name!r}: cannot disconnect unknown edge "
                f"{edge!r}"
            )
        producer.outputs.remove(edge)
        consumer = edge.consumer
        port = consumer.inputs[edge.consumer_port]
        if port is not None and port.queue is edge.queue:
            consumer.inputs[edge.consumer_port] = None
        self._edges.remove(edge)

    def producer_of(self, edge: OutputEdge) -> Operator:
        """The operator holding ``edge`` among its outputs."""
        for op in self._operators.values():
            if edge in op.outputs:
                return op
        raise PlanError(
            f"plan {self.name!r}: edge {edge!r} has no producer here"
        )

    def remove_operator(self, name: str) -> Operator:
        """Drop a fully-disconnected operator from the plan.

        Rewrites must :meth:`disconnect` every edge first; removing a
        still-wired operator would leave dangling queues.
        """
        op = self.operator(name)
        if op.outputs or any(p is not None for p in op.inputs):
            raise PlanError(
                f"plan {self.name!r}: operator {name!r} is still "
                f"connected; disconnect its edges before removal"
            )
        del self._operators[name]
        return op

    def chain(self, *operators: Operator, page_size: int = DEFAULT_PAGE_SIZE) -> Operator:
        """Connect operators linearly; returns the last one."""
        for producer, consumer in zip(operators, operators[1:]):
            self.connect(producer, consumer, page_size=page_size)
        return operators[-1]

    def register_shard_group(self, group: ShardGroup) -> ShardGroup:
        """Record a shard region over operators already in the plan.

        Validates that the boundary operators and every lane member exist
        and that the lane count matches the declared fanout.  The group
        is IR metadata: it steers metrics rollups and rendering, never
        execution (the wiring does that).
        """
        for op_name in (group.partition, group.merge, *group.members):
            if op_name not in self._operators:
                raise PlanError(
                    f"plan {self.name!r}: shard group {group.name!r} "
                    f"names unknown operator {op_name!r}"
                )
        if len(group.lanes) != group.n:
            raise PlanError(
                f"plan {self.name!r}: shard group {group.name!r} declares "
                f"n={group.n} but has {len(group.lanes)} lane(s)"
            )
        self._shard_groups.append(group)
        return group

    def replace_lane_members(
        self, members: Sequence[str], replacement: str
    ) -> None:
        """Substitute a fused run of lane members with its composite name.

        Optimizer rewrites that collapse operators *inside* a shard lane
        must keep the region record truthful -- metrics rollups, the
        rebalance protocol and the renderers all resolve lanes by
        operator name.  Each lane's run of ``members`` collapses to the
        single ``replacement`` name; lanes and groups not mentioning any
        member are untouched.
        """
        member_set = set(members)
        for index, group in enumerate(self._shard_groups):
            if not member_set & set(group.members):
                continue
            new_lanes = []
            for lane in group.lanes:
                rewritten: list[str] = []
                for op_name in lane:
                    if op_name in member_set:
                        if replacement not in rewritten:
                            rewritten.append(replacement)
                    else:
                        rewritten.append(op_name)
                new_lanes.append(tuple(rewritten))
            self._shard_groups[index] = replace(
                group, lanes=tuple(new_lanes)
            )

    # -- access -------------------------------------------------------------------

    @property
    def operators(self) -> list[Operator]:
        return list(self._operators.values())

    @property
    def edges(self) -> list[OutputEdge]:
        return list(self._edges)

    @property
    def shard_groups(self) -> list[ShardGroup]:
        return list(self._shard_groups)

    def operator(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError:
            raise PlanError(f"no operator named {name!r}") from None

    def sources(self) -> list[SourceOperator]:
        return [
            op for op in self._operators.values()
            if isinstance(op, SourceOperator)
        ]

    def sinks(self) -> list[Operator]:
        return [op for op in self._operators.values() if not op.outputs]

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check connectivity and acyclicity; raise PlanError otherwise."""
        if not self._operators:
            raise PlanError(f"plan {self.name!r} is empty")
        for op in self._operators.values():
            for index, port in enumerate(op.inputs):
                if port is None:
                    raise PlanError(
                        f"{op.name}: input port {index} is not connected"
                    )
        if not self.sources():
            raise PlanError(f"plan {self.name!r} has no source operator")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self._operators}

        def visit(op: Operator) -> None:
            colour[op.name] = GREY
            for edge in op.outputs:
                successor = edge.consumer
                if colour[successor.name] == GREY:
                    raise PlanError(
                        f"plan {self.name!r} has a cycle through "
                        f"{op.name!r} -> {successor.name!r}"
                    )
                if colour[successor.name] == WHITE:
                    visit(successor)
            colour[op.name] = BLACK

        for op in self._operators.values():
            if colour[op.name] == WHITE:
                visit(op)

    # -- reporting -----------------------------------------------------------------

    def _fused_rows(
        self, checkpoints: bool
    ) -> list[tuple[str, list[tuple[str, str]]]]:
        """``(composite_name, [(stage, type), ...])`` for every fused
        composite in the plan (duck-typed on ``fused_stages`` to keep the
        IR module free of operator-package imports)."""
        rows = []
        for op in self._operators.values():
            stages = getattr(op, "fused_stages", None)
            if stages:
                rows.append((
                    op.name,
                    [
                        (
                            stage.name,
                            type(stage).__name__
                            + checkpoint_annotation(
                                type(stage), checkpoints
                            ),
                        )
                        for stage in stages
                    ],
                ))
        return rows

    def describe(self, *, checkpoints: bool = False) -> str:
        """Text rendering of the plan topology.

        With ``checkpoints=True``, operators that carry checkpointable
        state (they override the snapshot seam) are marked ``⌖``; the
        default output is unchanged.  Fused composites list their stages
        in a trailer so optimized plans render honestly.
        """
        return render_describe(
            self.name,
            [
                (
                    op.name,
                    type(op).__name__
                    + checkpoint_annotation(type(op), checkpoints),
                    [
                        f"{e.consumer.name}[{e.consumer_port}]"
                        f"{edge_annotation(e.queue.capacity)}"
                        for e in op.outputs
                    ],
                )
                for op in self._operators.values()
            ],
            regions=self._shard_groups,
            fused=self._fused_rows(checkpoints),
        )

    def to_dot(self, *, checkpoints: bool = False) -> str:
        """Graphviz (DOT) rendering of the plan topology.

        See :func:`render_dot` for the conventions; ``checkpoints=True``
        appends ``⌖`` to checkpoint-capable operators' type labels.
        """
        fused_rows = self._fused_rows(checkpoints)
        # External edges touching a composite attach to its head (inward)
        # or tail (outward) stage node inside the cluster.
        head_of = {
            name: f"{name}::{stages[0][0]}" for name, stages in fused_rows
        }
        tail_of = {
            name: f"{name}::{stages[-1][0]}" for name, stages in fused_rows
        }
        return render_dot(
            self.name,
            [
                (
                    op.name,
                    type(op).__name__
                    + checkpoint_annotation(type(op), checkpoints),
                    isinstance(op, SourceOperator),
                    not op.outputs,
                )
                for op in self._operators.values()
                if op.name not in head_of
            ],
            [
                (
                    tail_of.get(op.name, op.name),
                    head_of.get(edge.consumer.name, edge.consumer.name),
                    edge.consumer_port,
                    edge.queue.capacity,
                )
                for op in self._operators.values()
                for edge in op.outputs
            ],
            regions=self._shard_groups,
            fused=fused_rows,
        )

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators.values())

    def __len__(self) -> int:
        return len(self._operators)
