"""Post-run invariant audits.

Section 4.4's core worry is silent accumulation: feedback must not leave
predicate state behind, and stream completion must not leave tuple state
behind.  :func:`audit_quiescence` inspects a finished plan and reports
violations; the test suite runs it after end-to-end scenarios, and library
users can call it after their own runs.

Checked invariants:

* every input queue is exhausted (closed and drained);
* no operator holds tuple state (``state_size == 0``) unless it opted out
  via ``retains_state_after_finish``;
* guards that survived to the end either sit on *undelimited* attributes
  (which the supportability rule warns about) or are reported as leaks
  when ``strict`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.plan import QueryPlan

__all__ = ["QuiescenceReport", "audit_quiescence"]


@dataclass
class QuiescenceReport:
    """Findings of a quiescence audit over a finished plan."""

    ok: bool
    undrained_queues: list[str] = field(default_factory=list)
    lingering_state: dict[str, int] = field(default_factory=dict)
    lingering_guards: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return "plan quiescent: no state or guard leaks"
        parts = []
        if self.undrained_queues:
            parts.append(f"undrained queues: {self.undrained_queues}")
        if self.lingering_state:
            parts.append(f"state leaks: {self.lingering_state}")
        if self.lingering_guards:
            parts.append(f"guard leaks: {self.lingering_guards}")
        return "NOT quiescent -- " + "; ".join(parts)


def audit_quiescence(plan: QueryPlan, *, strict_guards: bool = False) -> QuiescenceReport:
    """Audit a plan after its run finished.

    With ``strict_guards`` any surviving guard counts as a leak; by
    default guards are tolerated (a stream may simply have ended before
    the covering punctuation arrived, which is not an accumulation bug).
    """
    undrained: list[str] = []
    state: dict[str, int] = {}
    guards: dict[str, int] = {}
    for operator in plan:
        for port in operator.inputs:
            if port is None:
                continue
            if not port.queue.exhausted:
                undrained.append(port.queue.name)
            if strict_guards and port.guards.active:
                guards[f"{operator.name}:input[{port.index}]"] = (
                    port.guards.active
                )
        if strict_guards and operator.output_guards.active:
            guards[f"{operator.name}:output"] = operator.output_guards.active
        if operator.metrics.state_size > 0 and not getattr(
            operator, "retains_state_after_finish", False
        ):
            state[operator.name] = operator.metrics.state_size
    ok = not undrained and not state and not guards
    return QuiescenceReport(
        ok=ok,
        undrained_queues=undrained,
        lingering_state=state,
        lingering_guards=guards,
    )
