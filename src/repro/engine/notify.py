"""Notification-driven policy half shared by the concurrent engines.

The threaded runtime and the asyncio engine implement the same scheduling
*shape* -- one worker per operator sleeping on a condition, woken by
notifications, with timed waits only for the arrival deadline of an
in-flight ``control_latency`` message -- over two different condition
primitives.  :class:`NotificationPolicy` is the half of that policy which
is primitive-agnostic, written once against the
:class:`~repro.stream.waiters.Waiter` seam:

* every :class:`~repro.engine.runtime.RuntimeCore` wake-up hook
  (``notify_control`` / ``notify_data`` / ``_on_finished`` /
  ``_on_paused`` / ``_on_resumed``) becomes ``waiter.notify_all()``;
* deferred control messages (sent but not yet *arrived* under
  ``control_latency``) are folded into a per-operator wake-up deadline,
  recomputed from scratch on every drain, which bounds that operator's
  next wait so delivery is never missed;
* :meth:`wait_timeout` turns the deadline into the engine's next wait
  bound (None = sleep until notified -- the no-polling guarantee).

Engines mix this in ahead of ``RuntimeCore`` and keep only what is
genuinely primitive-specific: thread bodies vs. coroutine bodies, and how
a worker parks on the waiter (``Condition.wait`` vs. awaited
``asyncio.Condition.wait``).
"""

from __future__ import annotations

from repro.operators.base import Operator
from repro.stream.waiters import Waiter

__all__ = ["NotificationPolicy"]


class NotificationPolicy:
    """Waiter-backed implementations of RuntimeCore's policy hooks.

    Mix in *before* :class:`~repro.engine.runtime.RuntimeCore` and call
    :meth:`_init_notifications` with the engine's waiter during
    ``__init__``.
    """

    _waiter: Waiter

    def _init_notifications(self, waiter: Waiter) -> None:
        self._waiter = waiter
        #: Earliest pending-but-unarrived control arrival per operator;
        #: bounds that operator's next wait so delivery is not missed.
        self._control_deadline: dict[str, float] = {}

    # -- runtime surface seen by operators ----------------------------------------

    def notify_control(
        self, operator: Operator, at: float | None = None
    ) -> None:
        # ``at`` is a virtual-time hint only the simulator needs; arrival
        # gating happens in the core's drain via ``control_latency``.
        self._waiter.notify_all()

    def notify_data(self, operator: Operator) -> None:
        self._waiter.notify_all()

    # -- RuntimeCore policy hooks --------------------------------------------------

    def drain_control(self, operator: Operator) -> bool:
        # Deadlines are recomputed from scratch on every drain: the core
        # re-defers whatever is still in flight.
        self._control_deadline.pop(operator.name, None)
        return super().drain_control(operator)  # type: ignore[misc]

    def _defer_control(self, operator: Operator, arrival: float) -> None:
        deadline = self._control_deadline.get(operator.name)
        if deadline is None or arrival < deadline:
            self._control_deadline[operator.name] = arrival

    def _on_finished(self, operator: Operator, at: float) -> None:
        self._waiter.notify_all()

    def _on_paused(self, operator: Operator, at: float) -> None:
        # The pause flushed open output pages; wake consumers to drain
        # them (that drain is what will eventually produce the resume).
        self._waiter.notify_all()

    def _on_resumed(self, operator: Operator, at: float) -> None:
        self._waiter.notify_all()

    # -- wait bounds ---------------------------------------------------------------

    def wait_timeout(self, operator: Operator) -> float | None:
        """Bound for the operator's next sleep, or None for "until notified".

        The only timed wait in a notification-driven engine: the arrival
        deadline of an in-flight (deferred) control message.
        """
        deadline = self._control_deadline.get(operator.name)
        if deadline is None:
            return None
        return max(0.0, deadline - self.clock.now())  # type: ignore[attr-defined]
