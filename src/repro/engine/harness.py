"""OperatorHarness: drive a single operator outside a full plan.

Useful for unit tests, characterization conformance checks (the
machine-checkable Tables 1-2 of the paper) and operator development: the
harness wires stub queues and control channels to every port, lets you
push tuples / punctuation / feedback directly, and exposes what the
operator emitted downstream and sent upstream -- the three feedback roles
(producer / exploiter / relayer, paper section 3.5) observed in
isolation.

Example::

    harness = OperatorHarness(my_count_operator)
    harness.push(tup)                      # deliver a tuple on port 0
    harness.push_punctuation(punct)
    actions = harness.feedback(assumed)    # deliver feedback from below
    harness.emitted_tuples()               # what went downstream
    harness.upstream_feedback(0)           # what was relayed to input 0
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator, OutputEdge
from repro.punctuation.embedded import Punctuation
from repro.stream.control import ControlChannel, ControlMessageKind
from repro.stream.queues import DataQueue
from repro.stream.tuples import StreamTuple

__all__ = ["OperatorHarness"]


class OperatorHarness:
    """Wire one operator to stub endpoints and drive it synchronously."""

    def __init__(self, operator: Operator, *, outputs: int = 1) -> None:
        self.operator = operator
        self._in_queues: list[DataQueue] = []
        self._in_controls: list[ControlChannel] = []
        for index in range(operator.n_inputs):
            queue = DataQueue(f"harness-in[{index}]")
            control = ControlChannel(f"harness-in[{index}]")
            operator.attach_input(index, queue, control, producer=None)
            self._in_queues.append(queue)
            self._in_controls.append(control)
        self._out_queues: list[DataQueue] = []
        self._out_controls: list[ControlChannel] = []
        self.edges: list[OutputEdge] = []
        for index in range(outputs):
            queue = DataQueue(f"harness-out[{index}]")
            control = ControlChannel(f"harness-out[{index}]")
            edge = OutputEdge(queue, control, consumer=operator,
                              consumer_port=index)
            operator.attach_output(edge)
            self._out_queues.append(queue)
            self._out_controls.append(control)
            self.edges.append(edge)
        operator.on_start()
        self._clock = 0.0
        self._collected: list[list[Any]] = [[] for _ in range(outputs)]

    # -- driving -------------------------------------------------------------

    def tick(self, delta: float = 1.0) -> float:
        """Advance the harness clock (stamped onto the operator)."""
        self._clock += delta
        self.operator.set_now(self._clock)
        return self._clock

    def push(self, element: StreamTuple | Punctuation, *, port: int = 0) -> None:
        """Deliver one stream element to an input port."""
        self.tick(0.0)
        self.operator.process_element(port, element)

    def push_all(self, elements: list, *, port: int = 0) -> None:
        for element in elements:
            self.push(element, port=port)

    def push_punctuation(self, punct: Punctuation, *, port: int = 0) -> None:
        self.push(punct, port=port)

    def push_page(self, elements: list, *, port: int = 0) -> None:
        """Deliver a whole page at once (the engines' batch fast path).

        Exercises :meth:`~repro.operators.base.Operator.process_page`
        without a meter -- i.e. native ``on_page`` implementations -- so
        batch/element equivalence is testable operator by operator.
        """
        self.tick(0.0)
        self.operator.process_page(port, elements)

    def feedback(
        self,
        feedback: FeedbackPunctuation,
        *,
        from_output: int = 0,
    ) -> list[ExploitAction]:
        """Deliver feedback as if sent by the consumer on one output edge."""
        self.tick(0.0)
        return self.operator.receive_feedback(
            feedback, from_edge=self.edges[from_output]
        )

    def finish(self) -> None:
        """Declare every input done and run the finish hook."""
        for index in range(self.operator.n_inputs):
            port = self.operator.inputs[index]
            if port is not None:
                port.done = True
                self.operator.on_input_done(index)
        self.operator.finished = True
        self.operator.on_finish()

    # -- observation --------------------------------------------------------------

    def emitted(self, *, output: int = 0) -> list[Any]:
        """Everything emitted downstream so far (cumulative).

        Repeated calls return the full history: the queue is drained into
        an internal collection, so observing tuples never discards
        punctuation emitted in between (and vice versa).
        """
        queue = self._out_queues[output]
        queue.flush()
        self._collected[output].extend(queue.drain_elements())
        return list(self._collected[output])

    def emitted_tuples(self, *, output: int = 0) -> list[StreamTuple]:
        return [e for e in self.emitted(output=output) if not e.is_punctuation]

    def emitted_punctuation(self, *, output: int = 0) -> list[Punctuation]:
        return [e for e in self.emitted(output=output) if e.is_punctuation]

    def upstream_feedback(self, port: int = 0) -> list[FeedbackPunctuation]:
        """Feedback messages the operator sent toward input ``port``."""
        collected: list[FeedbackPunctuation] = []
        control = self._in_controls[port]
        while (message := control.receive_upstream()) is not None:
            if message.kind is ControlMessageKind.FEEDBACK:
                collected.append(message.payload)
        return collected

    def input_guard_count(self, port: int = 0) -> int:
        return self.operator.input_port(port).guards.active

    def output_guard_count(self) -> int:
        return self.operator.output_guards.active
