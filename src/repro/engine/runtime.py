"""Shared runtime core: the mechanism layer under every execution engine.

NiagaraST (paper section 5) has one runtime architecture -- operators
connected by page queues, with out-of-band high-priority control -- and
several scheduling policies could sit on top of it.  This module is that
split made explicit:

* :class:`RuntimeCore` owns the **mechanism**: control-message draining
  (including ``control_latency`` arrival semantics), input-completion and
  ``on_input_done`` bookkeeping, operator finish plus queue closure, and
  the runtime surface operators see (``now`` / ``notify_control`` /
  ``notify_data`` / the feedback and output logs);
* engines subclass it with a **policy**: the deterministic
  :class:`~repro.engine.simulator.Simulator` (event heap + virtual clock)
  and the :class:`~repro.engine.threaded.ThreadedRuntime` (thread per
  operator + condition waits).  Future backends (asyncio, sharded,
  multi-process workers) add a policy subclass without re-implementing the
  control/completion/finish protocol.

Policy hooks a subclass may override:

``notify_control`` / ``notify_data``
    How a wake-up reaches the operator (heap event vs. condition notify).
``_activity_time``
    The timestamp stamped on lifecycle callbacks (virtual busy horizon vs.
    wall clock).
``_charge_control``
    Per-message accounting before dispatch (the simulator charges
    ``control_cost`` against the operator's busy horizon).
``_defer_control``
    What to do with a control message that has not *arrived* yet
    (``sent_at + control_latency`` is in the future): the simulator
    schedules a control event at the arrival time, the threaded runtime
    records a wake-up deadline for the sleeping operator thread.
``_on_finished``
    Post-finish plumbing (stamp + wake consumers vs. notify all threads).
``_on_paused`` / ``_on_resumed``
    What happens when an operator's last resume arrives / first pause
    lands: the simulator reschedules stalled work and flushes open pages,
    the threaded runtime notifies sleeping threads.

**Backpressure** also lives here, because it is pure mechanism: when a
bounded :class:`~repro.stream.queues.DataQueue` crosses its high-water
mark, :meth:`RuntimeCore.check_pressure` issues a *pause*
:class:`~repro.core.feedback.FlowControlPunctuation` upstream on the
edge's control channel -- on behalf of the consumer, exactly as if the
consumer had produced feedback -- and :meth:`RuntimeCore.check_relief`
issues the matching *resume* when the queue drains to its low-water mark.
Delivery rides the ordinary control-drain path, so pauses observe
``control_latency`` and preempt data like any feedback.  Engines stop
scheduling paused operators; pressure propagates transitively because a
paused operator stops draining its own inputs.  Deadlock is avoided by
three rules (see ``docs/backpressure.md``): pause flushes the producer's
open pages (so the consumer can always drain to the low-water mark), a
paused operator whose inputs are exhausted may still finish, and resume
signals to already-finished producers are simply dropped.

**Shard groups** (``docs/sharding.md``) add two pieces of bookkeeping on
top.  First, *per-lane* flow control: a ``lane_flow_control`` operator
(PARTITION) is not stalled by a pause on one output lane -- it absorbs
that lane's traffic and keeps feeding the siblings -- so
:meth:`RuntimeCore.is_paused` defers to the operator's
``holding_pressure()`` while any lane is paused, and a lane resume that
releases a full stall reschedules the operator even though other lanes
remain paused.  Second, :meth:`RuntimeCore.collect_metrics` rolls
operator and queue counters up per shard-group lane
(:class:`~repro.engine.metrics.ShardGroupMetrics`, the skew report).
Control *broadcast* across replicas needs no runtime special case: it
falls out of the shared control protocol -- the merge's identity mapping
relays feedback to every lane, the partition broadcasts punctuation and
reconciles per-lane feedback (key-routed or by agreement), and unknown
control kinds forward hop-by-hop through both boundary operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.feedback import (
    CheckpointPunctuation,
    FeedbackPunctuation,
    FlowControlPunctuation,
)
from repro.core.roles import FeedbackLog
from repro.engine.metrics import (
    OutputLog,
    PlanMetrics,
    QueueMetrics,
    ShardGroupMetrics,
    ShardLaneMetrics,
)
from repro.engine.plan import QueryPlan
from repro.errors import EngineError
from repro.operators.base import Operator, OutputEdge, SourceOperator
from repro.stream.clock import Clock
from repro.stream.control import (
    ControlMessage,
    ControlMessageKind,
    Direction,
)

__all__ = ["RuntimeCore", "RunResult"]

#: Tolerance when comparing a message's arrival time against the clock;
#: keeps float accumulation from deferring an already-due message.
ARRIVAL_EPS = 1e-12


@dataclass
class RunResult:
    """Everything a finished run exposes to callers (both engines)."""

    plan: QueryPlan
    metrics: PlanMetrics
    output_log: OutputLog
    feedback_log: FeedbackLog
    #: The run's checkpoint store when durability was active (pass it --
    #: or its directory path -- back as ``recover_from=`` to resume).
    checkpoint_store: Any = None

    @property
    def makespan(self) -> float:
        return self.metrics.makespan

    @property
    def total_work(self) -> float:
        return self.metrics.total_work

    def sink(self, name: str) -> Operator:
        return self.plan.operator(name)


class RuntimeCore:
    """Mechanism shared by every execution engine.

    Subclasses provide the scheduling policy; this class provides the
    control/completion/finish protocol and is also the runtime surface
    operators see (``operator.runtime`` points at the engine itself).
    """

    def __init__(
        self,
        plan: QueryPlan,
        clock: Clock,
        *,
        control_latency: float = 0.0,
        checkpoint_every: int | None = None,
        checkpoint_store: Any = None,
        recover_from: Any = None,
        ingestion_policy: str = "exactly-once",
        elastic: Any = None,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.clock = clock
        self.control_latency = float(control_latency)
        self.feedback_log = FeedbackLog()
        self.output_log = OutputLog()
        self._started = False
        #: Edges (by queue name) each operator is currently paused on.
        self._paused_outputs: dict[str, set[str]] = {}
        #: When each currently-paused operator's first pause landed.
        self._paused_since: dict[str, float] = {}
        #: Durability coordinator, or None when checkpointing is off.
        #: Setting any durability option activates it -- including the
        #: recovery restore (operator state, source rewind offsets, sink
        #: replay-window dedup), which runs here, before the engine
        #: starts (and, for the multiprocess engine, before the fork).
        self.checkpoints = None
        if (
            checkpoint_every is not None
            or checkpoint_store is not None
            or recover_from is not None
        ):
            from repro.durability import activate_durability

            self.checkpoints = activate_durability(
                plan,
                every=checkpoint_every,
                store=checkpoint_store,
                recover_from=recover_from,
                policy=ingestion_policy,
            )
        #: Elastic autoscaling controller (None when elasticity is off).
        #: Engines that can rebalance drive ``elastic.tick`` on the
        #: configured cadence; ``elastic_declines`` mirrors the
        #: optimizer's fusibility-decline reporting in the metrics.
        self.elastic = None
        self.elastic_declines: list[tuple[str, str]] = []
        if elastic is not None:
            if self.checkpoints is not None:
                raise EngineError(
                    "elastic= cannot combine with checkpointing: a "
                    "checkpoint cut inside a migration window could "
                    "snapshot a moved key's state twice (or not at all)"
                )
            from repro.elasticity.controller import ElasticController

            self.elastic = ElasticController(self, elastic)
            self.elastic_declines = self.elastic.declines

    # -- runtime surface seen by operators -----------------------------------------

    def now(self) -> float:
        return self.clock.now()

    def notify_control(self, operator: Operator, at: float | None = None) -> None:
        """A control message was queued for ``operator``; wake it."""
        raise NotImplementedError

    def notify_data(self, operator: Operator) -> None:
        """New data is ready for ``operator``; wake it."""
        raise NotImplementedError

    # -- policy hooks ----------------------------------------------------------------

    def _activity_time(self, operator: Operator) -> float:
        """Timestamp for lifecycle callbacks (``on_input_done``/``on_finish``)."""
        return self.clock.now()

    def _charge_control(self, operator: Operator) -> None:
        """Account for one control message before it is dispatched."""
        operator.set_now(self._activity_time(operator))

    def _defer_control(self, operator: Operator, arrival: float) -> None:
        """A pending message arrives only at ``arrival``; revisit then."""

    def _on_finished(self, operator: Operator, at: float) -> None:
        """Post-finish plumbing (stamp outputs / wake consumers)."""

    def _on_paused(self, operator: Operator, at: float) -> None:
        """An operator just became paused (first pause on any edge)."""

    def _on_resumed(self, operator: Operator, at: float) -> None:
        """An operator's last pause was lifted; reschedule its work."""

    # -- lifecycle -------------------------------------------------------------------

    def _begin(self) -> None:
        if self._started:
            raise EngineError(
                f"{type(self).__name__} instances are single-use"
            )
        self._started = True

    def _start_operators(self) -> None:
        for op in self.plan:
            op.runtime = self
            op.set_now(0.0)
            op.on_start()

    def _notify_run_aborted(self, error: BaseException) -> None:
        """Tell every unfinished operator the run died under it.

        Engines call this from their failure paths so operators holding
        external parties (an :class:`~repro.operators.sink.AwaitableSink`
        with parked client coroutines) fail fast instead of waiting on an
        ``on_finish`` that will never come.  Operator hooks must not mask
        the original error, so their own exceptions are swallowed here.
        """
        for op in self.plan:
            if op.finished:
                continue
            try:
                op.on_run_aborted(error)
            except BaseException:  # noqa: BLE001 - the run error wins
                pass

    # -- control draining ------------------------------------------------------------

    def _next_arrived_control(
        self, operator: Operator
    ) -> tuple[ControlMessage | None, OutputEdge | None]:
        """The next *arrived* control message for ``operator``.

        A message arrives at ``sent_at + control_latency``; heads that
        have not arrived yet stay queued and are handed to
        :meth:`_defer_control`, preserving causality when a busy producer
        generated feedback "in the future" relative to the engine clock.
        Feedback from consumers is scanned before notices from producers.
        """
        now = self.clock.now()
        latency = self.control_latency
        for edge in operator.outputs:  # feedback from consumers
            head = edge.control.peek_upstream()
            if head is None:
                continue
            arrival = head.sent_at + latency
            if arrival > now + ARRIVAL_EPS:
                self._defer_control(operator, arrival)
                continue
            return edge.control.receive_upstream(), edge
        for port in operator.inputs:  # notices from producers
            if port is None:
                continue
            head = port.control.peek_downstream()
            if head is None:
                continue
            arrival = head.sent_at + latency
            if arrival > now + ARRIVAL_EPS:
                self._defer_control(operator, arrival)
                continue
            return port.control.receive_downstream(), None
        return None, None

    def drain_control(self, operator: Operator) -> bool:
        """Deliver pending, arrived control for ``operator``; True if any.

        This is the single implementation of NiagaraST's "control messages
        are given high priority and processed before pending tuples": both
        engines call it before handing an operator a data page.
        """
        delivered = False
        while True:
            message, from_edge = self._next_arrived_control(operator)
            if message is None:
                return delivered
            delivered = True
            operator.metrics.control_messages += 1
            self._charge_control(operator)
            if message.kind is ControlMessageKind.FEEDBACK:
                if isinstance(message.payload, FeedbackPunctuation):
                    operator.receive_feedback(
                        message.payload, from_edge=from_edge
                    )
                else:
                    # A feedback payload this runtime predates (a future
                    # punctuation kind): forward it rather than dropping
                    # it on the floor, so it still reaches an operator
                    # (or client) that understands it.
                    operator.forward_control(message)
            elif message.kind is ControlMessageKind.FLOW_CONTROL:
                self._apply_flow_control(
                    operator, message.payload, from_edge
                )
            elif message.kind is ControlMessageKind.RESULT_REQUEST:
                operator.on_result_request(message.payload)
            elif message.kind is ControlMessageKind.CHECKPOINT:
                # A sink's epoch-completion acknowledgement travelling
                # back upstream hop by hop; it terminates at a source
                # (nothing further up to tell).
                if isinstance(operator, SourceOperator):
                    if self.checkpoints is not None:
                        self.checkpoints.acknowledge(
                            operator, message.payload
                        )
                else:
                    operator.forward_control(message)
            elif message.kind is ControlMessageKind.REBALANCE:
                # Elastic re-partitioning: the partition handles both
                # directions (the controller's command and the merge's
                # acknowledgement); every other operator relays hop by
                # hop, walking the ack back up the lane.
                if not operator.on_rebalance_control(message):
                    operator.forward_control(message)
            else:
                # END_OF_STREAM / SHUTDOWN are normally carried via queue
                # closure; explicit messages of those kinds -- and any
                # kind this runtime predates -- are forwarded so every
                # operator on the path still hears them.
                operator.forward_control(message)

    # -- flow control (backpressure) -----------------------------------------------

    def is_paused(self, operator: Operator) -> bool:
        """True while the operator must not be scheduled for data work.

        For ordinary operators that is "any output edge has it paused".
        Operators with ``lane_flow_control`` (PARTITION) steer each lane
        independently: a paused lane redirects that lane's traffic into
        the operator's stash while the siblings keep flowing, so the
        operator stays schedulable until it reports
        :meth:`~repro.operators.base.Operator.holding_pressure` -- at
        which point the stall becomes transitive toward the source
        exactly like an ordinary pause.
        """
        if operator.lane_flow_control:
            # Lane operators stall on *holding*, not on lane pauses --
            # and holding can arise without any pause at all (a rebalance
            # stash filling during a long migration window), so the
            # operator is consulted even when no output edge is paused.
            holding = operator.holding_pressure()
            # Stall accounting for lane operators: the holding transition
            # happens mid-processing (a stash filling), so the paused
            # clock starts and stops at the runtime's next observation
            # here -- every engine consults is_paused before scheduling,
            # which bounds the error to one scheduling step.
            name = operator.name
            if holding:
                self._paused_since.setdefault(name, self.clock.now())
            else:
                since = self._paused_since.pop(name, None)
                if since is not None:
                    operator.metrics.time_paused += max(
                        0.0, self.clock.now() - since
                    )
            return holding
        return bool(self._paused_outputs.get(operator.name))

    def check_pressure(self, producer: Operator, at: float | None = None) -> None:
        """Signal *pause* on any of ``producer``'s queues over high water.

        Called by engines right after a producer's activity.  The pause
        punctuation is issued on behalf of the edge's consumer (it is the
        consumer's queue that is congested) and travels upstream on the
        edge's control channel like any feedback.
        """
        if producer.finished:
            return
        now = self.clock.now() if at is None else at
        for edge in producer.outputs:
            queue = edge.queue
            if queue.pressure_signalled or not queue.above_high_water:
                continue
            queue.pressure_signalled = True
            consumer = edge.consumer
            consumer.metrics.pauses_issued += 1
            punct = FlowControlPunctuation.pause(
                queue.name, issuer=consumer.name, issued_at=now,
                occupancy=queue.occupancy,
            )
            edge.control.send(
                ControlMessage(
                    ControlMessageKind.FLOW_CONTROL,
                    Direction.UPSTREAM,
                    payload=punct,
                    sender=consumer.name,
                    sent_at=now,
                )
            )
            self.notify_control(producer, at=now)

    def check_relief(self, consumer: Operator, at: float | None = None) -> None:
        """Signal *resume* on any of ``consumer``'s inputs at low water.

        Called by engines right after a consumer drained a page.  Resume
        toward an already-finished producer is skipped (the flag is still
        cleared): the stream is over and there is no emission to resume.
        """
        now = self.clock.now() if at is None else at
        for port in consumer.inputs:
            if port is None:
                continue
            queue = port.queue
            if not queue.pressure_signalled or not queue.below_low_water:
                continue
            queue.pressure_signalled = False
            producer = port.producer
            if producer is None or producer.finished:
                continue
            consumer.metrics.resumes_issued += 1
            punct = FlowControlPunctuation.resume(
                queue.name, issuer=consumer.name, issued_at=now,
                occupancy=queue.occupancy,
            )
            port.control.send(
                ControlMessage(
                    ControlMessageKind.FLOW_CONTROL,
                    Direction.UPSTREAM,
                    payload=punct,
                    sender=consumer.name,
                    sent_at=now,
                )
            )
            self.notify_control(producer, at=now)

    def _apply_flow_control(
        self,
        operator: Operator,
        punct: FlowControlPunctuation,
        from_edge: OutputEdge | None,
    ) -> None:
        """Deliver one pause/resume to the producer it throttles.

        Every operator participates regardless of ``feedback_aware``:
        flow control is a runtime protocol, not a semantic hint, so the
        paper's incremental-deployment story (feedback-unaware operators
        ignore feedback) does not exempt anyone from backpressure.
        """
        paused = self._paused_outputs.setdefault(operator.name, set())
        at = self._activity_time(operator)
        if punct.is_pause:
            operator.metrics.pauses_received += 1
            # Lane-flow-control operators are not stalled by a lane pause
            # (they absorb and keep running), so no paused-time clock.
            if not paused and not operator.lane_flow_control:
                self._paused_since[operator.name] = at
            paused.add(punct.edge)
            # Flush open output pages: the consumer must be able to drain
            # everything buffered, or it could never reach its low-water
            # mark and the pause would deadlock (rule 1 of 3).
            for edge in operator.outputs:
                edge.queue.flush()
            operator.on_pause(punct, from_edge)
            self._on_paused(operator, at)
        else:
            operator.metrics.resumes_received += 1
            paused.discard(punct.edge)
            operator.on_resume(punct, from_edge)
            if not paused:
                since = self._paused_since.pop(operator.name, None)
                if since is not None:
                    operator.metrics.time_paused += max(0.0, at - since)
                self._on_resumed(operator, at)
            elif operator.lane_flow_control and not self.is_paused(operator):
                # Other lanes are still paused, but flushing this lane's
                # stash may have released the full stall: reschedule.
                self._on_resumed(operator, at)

    # -- input completion and finish ---------------------------------------------

    def mark_done_ports(self, operator: Operator) -> bool:
        """Mark exhausted input ports done (firing ``on_input_done``).

        Returns True when every input is done.
        """
        all_done = True
        progressed = True
        while progressed:
            progressed = False
            all_done = True
            for port in operator.inputs:
                if port is None:
                    continue
                if (
                    not port.done
                    and port.queue.exhausted
                    and not operator._ckpt_port_busy(port.index)
                ):
                    # A port still mid-checkpoint-alignment (a marker head
                    # pending, or stashed elements behind one) is not done
                    # yet even though its queue is exhausted: the stash
                    # must be delivered before ``on_input_done`` (a join
                    # would otherwise pad early).  The release hook below
                    # may drain sibling ports' stashes, so re-scan.
                    port.done = True
                    operator.set_now(self._activity_time(operator))
                    operator._ckpt_port_done(port.index)
                    operator.on_input_done(port.index)
                    progressed = True
                all_done = all_done and port.done
        return all_done

    def check_input_completion(self, operator: Operator) -> None:
        """Finish ``operator`` once all of its inputs are closed and drained."""
        if operator.finished or isinstance(operator, SourceOperator):
            return
        if self.mark_done_ports(operator) and operator.inputs:
            self.finish_operator(operator)

    def finish_operator(self, operator: Operator) -> None:
        """Run ``on_finish`` and close the operator's output queues."""
        if operator.finished:
            return
        operator.finished = True
        at = self._activity_time(operator)
        operator.set_now(at)
        operator.on_finish()
        for edge in operator.outputs:
            edge.queue.close()
        # A paused operator may finish (its inputs are exhausted; holding
        # it hostage to a resume that depends on downstream progress could
        # deadlock -- rule 2 of 3).  Settle its paused-time accounting.
        if self._paused_outputs.pop(operator.name, None):
            since = self._paused_since.pop(operator.name, None)
            if since is not None:
                operator.metrics.time_paused += max(0.0, at - since)
        if self.checkpoints is not None:
            self.checkpoints.operator_finished(operator)
        self._on_finished(operator, at)

    # -- sources ---------------------------------------------------------------------

    def dispatch_source_element(self, source: SourceOperator, element: Any) -> None:
        """Emit one replayed source element at the current clock time."""
        source.set_now(self.clock.now())
        if isinstance(element, CheckpointPunctuation):
            # A checkpoint marker injected by the coordinator's event
            # wrapper: snapshot the source and start the marker's sweep
            # downstream (bypassing ``emit_punctuation``, whose pattern
            # guards expect schema punctuation).
            source._ckpt_complete(element)
            return
        if element.is_punctuation:
            source.emit_punctuation(element)
        else:
            source.emit(element)

    def source_events(self, source: SourceOperator) -> Any:
        """The source's event iterator, checkpoint-wrapped when active.

        Every engine pulls source timelines through here so marker
        injection and recovery rewind need no per-engine code.
        """
        events = source.events()
        if self.checkpoints is None:
            return events
        return self.checkpoints.wrap_events(source, events)

    def source_aevents(self, source: SourceOperator, aevents: Any) -> Any:
        """Async twin of :meth:`source_events` (asyncio engine)."""
        if self.checkpoints is None:
            return aevents
        return self.checkpoints.wrap_aevents(source, aevents)

    # -- results ---------------------------------------------------------------------

    def collect_metrics(self) -> PlanMetrics:
        metrics = PlanMetrics()
        # Shard-lane membership, so fused composites inside a lane report
        # their stages under the lane ("group[lane]::composite::stage") --
        # without it, same-named replicas' stages would collapse into one
        # entry and the skew report could not attribute their work.
        lane_prefix: dict[str, str] = {}
        for group in self.plan.shard_groups:
            for index, lane in enumerate(group.lanes):
                for member in lane:
                    lane_prefix[member] = f"{group.name}[{index}]"
        for op in self.plan:
            metrics.operator_metrics[op.name] = op.metrics
            metrics.total_work += op.metrics.busy_time
            # Fused composites fold their per-stage counters into the
            # report under "composite::stage" keys (duck-typed so the
            # runtime stays ignorant of the optimizer package).
            prefix = lane_prefix.get(op.name)
            for stage in getattr(op, "fused_stages", ()):
                key = f"{op.name}::{stage.name}"
                if prefix is not None:
                    key = f"{prefix}::{key}"
                metrics.operator_metrics[key] = stage.metrics
        for op in self.plan:
            # Keyed by (producer, consumer, port) -- the structural edge
            # identity -- rather than the queue's display name, so the
            # replicated edges of a shard region and the several inputs
            # of a join/merge can never collapse into one entry.
            for edge in op.outputs:
                queue = edge.queue
                entry = QueueMetrics(
                    name=queue.name,
                    producer=op.name,
                    consumer=edge.consumer.name,
                    port=edge.consumer_port,
                    capacity=queue.capacity,
                    low_water=queue.low_water,
                    peak_occupancy=queue.peak_occupancy,
                    elements_enqueued=queue.elements_enqueued,
                    pages_flushed=queue.pages_flushed,
                )
                metrics.queue_metrics[entry.edge_key] = entry
        metrics.elastic_declines = list(self.elastic_declines)
        self._collect_shard_metrics(metrics)
        if self.checkpoints is not None:
            metrics.checkpoint_epochs = len(
                self.checkpoints.complete_epochs()
            )
            metrics.checkpoint_bytes = sum(
                m.snapshot_bytes
                for m in metrics.operator_metrics.values()
            )
            metrics.checkpoint_time = sum(
                m.snapshot_time
                for m in metrics.operator_metrics.values()
            )
        metrics.makespan = self.clock.now()
        return metrics

    def live_metrics(self) -> PlanMetrics:
        """A mid-run metrics snapshot for monitoring endpoints.

        :meth:`collect_metrics` reads plain counters and never blocks,
        so on the cooperative single-threaded asyncio engine it is safe
        to call from another coroutine while the run is in flight --
        this alias documents that contract for the serving layer's
        ``/metrics`` endpoint.  On the threaded/multiprocess engines the
        counters are written concurrently, so a live snapshot is
        approximate (torn reads of independent counters, never a crash);
        final end-of-run numbers remain exact on every engine.
        """
        return self.collect_metrics()

    def _collect_shard_metrics(self, metrics: PlanMetrics) -> None:
        """Roll operator counters up per shard-group lane (skew report)."""
        for group in self.plan.shard_groups:
            partition = self.plan.operator(group.partition)
            merge = self.plan.operator(group.merge)
            in_use = getattr(partition, "lanes_in_use", None)
            rollup = ShardGroupMetrics(
                name=group.name,
                key=group.key,
                n=group.n,
                regions_held=getattr(merge, "regions_held", 0),
                regions_released=getattr(merge, "regions_released", 0),
                rebalances=getattr(partition, "rebalances_completed", 0),
                keys_migrated=getattr(partition, "keys_migrated", 0),
            )
            for index, lane in enumerate(group.lanes):
                active = in_use is None or index in in_use
                members = [self.plan.operator(name).metrics for name in lane]
                ingress = (
                    partition.outputs[index].queue.elements_enqueued
                    if index < len(partition.outputs) else 0
                )
                rollup.lanes.append(
                    ShardLaneMetrics(
                        lane=index,
                        operators=lane,
                        ingress=ingress,
                        tuples_in=sum(m.tuples_in for m in members),
                        tuples_out=sum(m.tuples_out for m in members),
                        busy_time=sum(m.busy_time for m in members),
                        time_paused=sum(m.time_paused for m in members),
                        active=active,
                    )
                )
                if active:
                    continue
                # A parked lane's edges are stale topology: exclude them
                # from plan-wide peak rollups (their history pre-dates
                # the lane-count change).
                if index < len(partition.outputs):
                    edge = partition.outputs[index]
                    metrics.inactive_edges.add(
                        f"{partition.name}->"
                        f"{edge.consumer.name}[{edge.consumer_port}]"
                    )
                for name in lane:
                    for edge in self.plan.operator(name).outputs:
                        metrics.inactive_edges.add(
                            f"{name}->"
                            f"{edge.consumer.name}[{edge.consumer_port}]"
                        )
            metrics.shard_metrics[group.name] = rollup

    def build_result(self, metrics: PlanMetrics) -> RunResult:
        return RunResult(
            plan=self.plan,
            metrics=metrics,
            output_log=self.output_log,
            feedback_log=self.feedback_log,
            checkpoint_store=(
                self.checkpoints.store
                if self.checkpoints is not None else None
            ),
        )
