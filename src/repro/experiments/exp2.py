"""Experiment 2: the speed-map query plan and feedback schemes (Figure 7).

The plan of paper Figure 4(b), with NiagaraST's ingest stage made explicit::

    SOURCE -> PARSE -> σQ (quality filter) -> AVERAGE -> SINK (map render)

A navigation client displays **one** of the nine freeway segments and
switches segments every 2, 4 or 6 minutes.  At every switch it injects
event-driven assumed feedback (section 3.3) for the segments it will *not*
look at during the upcoming interval::

    ¬[window ∈ [w_lo, w_hi], segment ∈ {not visible}, *]

Bounding the feedback by the window range keeps it *supportable* (section
4.4): source punctuation eventually covers the range and every guard
expires -- no retraction mechanism is needed even though the viewer keeps
changing its mind.

Feedback schemes (paper section 6):

====  ==========================================================
F0    no feedback (baseline)
F1    AVERAGE mounts a guard on its *output* only
F2    AVERAGE additionally avoids aggregating unneeded groups
      (state purge + input guard)
F3    AVERAGE relays the feedback to the quality filter, which
      guards its own input; the relay stops at the feedback-
      unaware PARSE stage, which is the floor on savings
====  ==========================================================

Cost-model calibration (documented in EXPERIMENTS.md): the paper's testbed
constants are unknown, so the three per-stage costs are set to land F1's
reduction at the published ~50 % and F2's at ~61 %; F3's ~65 % then
*follows* from plan structure rather than tuning.  What the benchmark
asserts is the paper's qualitative claims: strict ordering F0 > F1 > F2 >
F3, reductions in the published bands, and no discernible overhead as the
feedback frequency rises from every 6 minutes to every 2 minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.api.aggregates import avg
from repro.api.flow import Flow, StreamHandle
from repro.engine.plan import QueryPlan
from repro.operators.passthrough import PassThrough
from repro.operators.select import QualityFilter
from repro.punctuation.atoms import InSet, Interval
from repro.punctuation.patterns import Pattern
from repro.core.feedback import FeedbackPunctuation
from repro.stream.schema import Schema
from repro.workloads.traffic import DETECTOR_SCHEMA, TrafficWorkload

__all__ = [
    "SCHEMES",
    "Exp2Config",
    "Exp2CellResult",
    "run_cell",
    "run_experiment_2",
]

SCHEMES = ("F0", "F1", "F2", "F3")


@dataclass(frozen=True)
class Exp2Config:
    """Parameters of Experiment 2.

    The paper's full workload is 18 h at 20 s resolution with 9 segments
    and 40 detectors per segment (~1.17 M tuples); the default here is a
    2 h slice (~130 k tuples) so the whole 12-cell sweep stays minutes-
    scale in pure Python.  Set ``REPRO_EXP2_HOURS=18`` for full scale --
    the savings fractions are horizon-invariant.
    """

    segments: int = 9
    detectors_per_segment: int = 40
    report_interval: float = 20.0
    horizon_hours: float = 2.0
    window_width: float = 20.0
    visible_segments: int = 1
    switch_minutes: tuple[float, ...] = (2.0, 4.0, 6.0)
    # Per-stage virtual costs (seconds); see module docstring.
    parse_cost: float = 0.0009
    quality_cost: float = 0.00015
    aggregate_cost: float = 0.000415
    render_cost: float = 0.0752
    control_cost: float = 0.0002
    punctuation_interval: float = 60.0
    page_size: int = 64
    seed: int = 7

    @classmethod
    def from_env(cls) -> "Exp2Config":
        hours = float(os.environ.get("REPRO_EXP2_HOURS", "2.0"))
        return cls(horizon_hours=hours)

    @property
    def horizon(self) -> float:
        return self.horizon_hours * 3600.0


@dataclass
class Exp2CellResult:
    """One (scheme, switch frequency) cell of Figure 7."""

    scheme: str
    switch_minutes: float
    execution_time: float          # total virtual work: the paper's metric
    makespan: float
    input_tuples: int
    results_rendered: int
    feedback_messages: int
    guard_drops: dict[str, int] = field(default_factory=dict)
    stage_work: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.scheme} @ {self.switch_minutes:g} min: "
            f"exec={self.execution_time:.1f}s, "
            f"rendered={self.results_rendered}, fb={self.feedback_messages}"
        )


#: Plan-operator names keyed by the short handles used by the ops dict.
_OPERATOR_NAMES = {
    "source": "source", "parse": "parse", "quality": "sigma_q",
    "average": "average", "sink": "map_render",
}


def _build_flow(
    config: Exp2Config, scheme: str
) -> tuple[Flow, StreamHandle]:
    """The Figure 4(b) plan as a flow; also returns the AVERAGE handle."""
    workload = TrafficWorkload(
        segments=config.segments,
        detectors_per_segment=config.detectors_per_segment,
        report_interval=config.report_interval,
        horizon=config.horizon,
        seed=config.seed,
    )
    flow = Flow(f"exp2-{scheme}", page_size=config.page_size)
    average = (
        flow.source(
            DETECTOR_SCHEMA, workload.detector_timeline(), name="source"
        )
        .punctuate(on="timestamp", every=config.punctuation_interval)
        .apply(lambda: PassThrough(
            "parse", DETECTOR_SCHEMA, tuple_cost=config.parse_cost,
            control_cost=config.control_cost,
        ))
        .apply(lambda: QualityFilter(
            "sigma_q", DETECTOR_SCHEMA,
            lambda tup: tup["speed"] is None or tup["speed"] < 120.0,
            tuple_cost=config.quality_cost,
            control_cost=config.control_cost,
        ))
        .window(
            avg("speed"),
            on="timestamp", width=config.window_width, by="segment",
            name="average",
            tuple_cost=config.aggregate_cost,
            control_cost=config.control_cost,
            exploit_level=1 if scheme == "F1" else 2,
            # Schemes F1/F2 stop the relay at AVERAGE (a knob that is not
            # a constructor argument, hence configure=).
            configure=(
                (lambda op: setattr(op, "relay_enabled", False))
                if scheme in ("F1", "F2") else None
            ),
        )
    )
    average.collect(
        "map_render",
        tuple_cost=config.render_cost,
        control_cost=config.control_cost,
    )
    return flow, average


def _build_plan(config: Exp2Config, scheme: str) -> tuple[QueryPlan, dict]:
    flow, _ = _build_flow(config, scheme)
    plan = flow.build()
    ops = {key: plan.operator(name) for key, name in _OPERATOR_NAMES.items()}
    return plan, ops


def _viewer_feedback(
    config: Exp2Config,
    switch_minutes: float,
    out_schema: Schema,
    issuer: str,
) -> list[tuple[float, FeedbackPunctuation]]:
    """The zooming client: one feedback injection per segment switch."""
    interval = switch_minutes * 60.0
    schedule: list[tuple[float, FeedbackPunctuation]] = []
    switch_count = int(config.horizon // interval)
    for index in range(switch_count):
        start = index * interval
        end = min(start + interval, config.horizon)
        visible = index % config.segments
        invisible = frozenset(
            s for s in range(config.segments) if s != visible
        )
        w_lo = int(start // config.window_width)
        w_hi = int(end // config.window_width) - 1
        if w_hi < w_lo:
            continue
        pattern = Pattern.from_mapping(
            out_schema,
            {
                "window": Interval(w_lo, w_hi),
                "segment": InSet(invisible),
            },
        )
        schedule.append(
            (
                start,
                FeedbackPunctuation.assumed(
                    pattern, issuer=issuer, issued_at=start
                ),
            )
        )
    return schedule


def _viewer_schedule(
    config: Exp2Config, switch_minutes: float, average, sink
) -> list[tuple[float, FeedbackPunctuation]]:
    """Back-compat wrapper taking operator instances (see tests)."""
    return _viewer_feedback(
        config, switch_minutes, average.output_schema, issuer=sink.name
    )


def run_cell(
    config: Exp2Config,
    scheme: str,
    switch_minutes: float,
    *,
    engine: str = "simulated",
) -> Exp2CellResult:
    """Run one Figure 7 cell (a scheme at a switch frequency).

    The viewer's segment switches are *declared* on the run call --
    ``(time, sink-name, feedback)`` triples -- rather than wired into the
    plan: the same flow runs feedback-free (F0) or under any schedule.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    if scheme != "F0" and engine != "simulated":
        # The viewer schedule is phrased in *stream* time; only the
        # virtual-clock engine can honour it (a wall-clock engine drains
        # the replay in milliseconds, every injection misses, and the
        # cell would silently report F0 numbers under an F1-F3 label).
        raise ValueError(
            f"scheme {scheme!r} needs timed feedback injections, which "
            f"only the 'simulated' engine honours (got {engine!r})"
        )
    flow, average_handle = _build_flow(config, scheme)
    injections: list[tuple[float, str, FeedbackPunctuation]] = []
    if scheme != "F0":
        injections = [
            (when, "map_render", feedback)
            for when, feedback in _viewer_feedback(
                config, switch_minutes, average_handle.schema,
                issuer="map_render",
            )
        ]
    result = flow.run(engine=engine, feedback=injections)
    plan = result.plan
    ops = {key: plan.operator(name) for key, name in _OPERATOR_NAMES.items()}
    average = ops["average"]
    sink = ops["sink"]
    stage_work = {
        name: ops[name].metrics.busy_time
        for name in ("parse", "quality", "average", "sink")
        if name in ops
    }
    stage_work["map_render"] = sink.metrics.busy_time
    return Exp2CellResult(
        scheme=scheme,
        switch_minutes=switch_minutes,
        execution_time=result.total_work,
        makespan=result.makespan,
        input_tuples=ops["parse"].metrics.tuples_in,
        results_rendered=len(sink.results),
        feedback_messages=sink.metrics.feedback_produced,
        guard_drops={
            "average_input": average.metrics.input_guard_drops,
            "average_output": average.metrics.output_guard_drops,
            "quality_input": ops["quality"].metrics.input_guard_drops,
        },
        stage_work=stage_work,
    )


def run_experiment_2(
    config: Exp2Config | None = None,
    *,
    schemes: tuple[str, ...] = SCHEMES,
    frequencies: tuple[float, ...] | None = None,
) -> dict[str, dict[float, Exp2CellResult]]:
    """The full Figure 7 sweep: scheme x switch frequency.

    F0 takes no feedback, so one run is reused across frequencies.
    """
    config = config or Exp2Config.from_env()
    frequencies = frequencies or config.switch_minutes
    table: dict[str, dict[float, Exp2CellResult]] = {}
    for scheme in schemes:
        table[scheme] = {}
        if scheme == "F0":
            baseline = run_cell(config, "F0", frequencies[0])
            for frequency in frequencies:
                table[scheme][frequency] = baseline
            continue
        for frequency in frequencies:
            table[scheme][frequency] = run_cell(config, scheme, frequency)
    return table
