"""One-command reproduction: regenerate every figure and table as text.

``python -m repro.experiments.report`` (or the installed ``repro-reproduce``
script) runs Experiment 1, Experiment 2, renders Tables 1-2 and the
ablations, and prints a self-contained report mirroring EXPERIMENTS.md --
the "did it reproduce on my machine?" artifact for downstream users.

Scale knobs: ``REPRO_EXP1_TUPLES`` and ``REPRO_EXP2_HOURS`` (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
import time

from repro.core import (
    count_characterization,
    join_characterization,
)
from repro.experiments.ablation import (
    run_centralized_ablation,
    run_pace_bound_ablation,
)
from repro.experiments.exp1 import Exp1Config, run_experiment_1
from repro.experiments.exp2 import Exp2Config, SCHEMES, run_experiment_2
from repro.stream.schema import Schema
from repro.viz import grouped_bars, scatter

__all__ = ["generate_report", "main"]


def _header(title: str) -> str:
    bar = "=" * 74
    return f"{bar}\n{title}\n{bar}"


def generate_report(
    *,
    exp1_config: Exp1Config | None = None,
    exp2_config: Exp2Config | None = None,
    include_figures: bool = True,
) -> str:
    """Build the full reproduction report as one string."""
    exp1_config = exp1_config or Exp1Config.from_env()
    exp2_config = exp2_config or Exp2Config.from_env()
    sections: list[str] = []

    # ---- Experiment 1 ------------------------------------------------------
    started = time.perf_counter()
    arms = run_experiment_1(exp1_config)
    sections.append(_header(
        "Experiment 1 -- imputation plan (Figures 5 & 6)"
    ))
    for key, figure_name in (
        ("no_feedback", "Figure 5 (no feedback)"),
        ("with_feedback", "Figure 6 (with feedback)"),
    ):
        arm = arms[key]
        if include_figures:
            sections.append(scatter(
                {"clean": arm.clean_series, "imputed": arm.imputed_series},
                width=70, height=14, title=figure_name,
                x_label="output time (s)", y_label="tuple id",
            ))
        sections.append(arm.summary())
    sections.append(
        f"paper: 97% vs 29% dropped; measured: "
        f"{arms['no_feedback'].drop_fraction:.0%} vs "
        f"{arms['with_feedback'].drop_fraction:.0%}   "
        f"[{time.perf_counter() - started:.1f}s wall]"
    )

    # ---- Experiment 2 ------------------------------------------------------
    started = time.perf_counter()
    table = run_experiment_2(exp2_config)
    frequencies = sorted(next(iter(table.values())).keys())
    sections.append(_header(
        "Experiment 2 -- speed-map feedback schemes (Figure 7)"
    ))
    sections.append(grouped_bars(
        {
            f"feedback every {freq:g} min": {
                scheme: table[scheme][freq].execution_time
                for scheme in SCHEMES
            }
            for freq in frequencies
        },
        title="execution time (virtual seconds)",
        value_format="{:.1f}s",
    ))
    baseline = table["F0"][frequencies[0]].execution_time
    paper = {"F1": 0.50, "F2": 0.61, "F3": 0.65}
    for scheme in ("F1", "F2", "F3"):
        measured = 1 - table[scheme][frequencies[0]].execution_time / baseline
        sections.append(
            f"{scheme}: paper reduction {paper[scheme]:.0%}, "
            f"measured {measured:.1%}"
        )
    sections.append(f"[{time.perf_counter() - started:.1f}s wall]")

    # ---- Tables -------------------------------------------------------------
    sections.append(_header("Table 1 -- characterization of COUNT"))
    sections.append(
        count_characterization(
            Schema.of("window", "segment", "count"),
            ["window", "segment"], "count",
        ).render_table()
    )
    sections.append(_header("Table 2 -- characterization of JOIN"))
    sections.append(
        join_characterization(
            Schema.of("a", "t", "id", "b"), ["a"], ["t", "id"], ["b"]
        ).render_table()
    )

    # ---- Ablations ------------------------------------------------------------
    sections.append(_header("Ablations"))
    comparison = run_centralized_ablation(exp2_config)
    sections.append("centralized vs localized (Figure 2 quantified):")
    sections.append("  " + comparison.summary())
    fractions = run_pace_bound_ablation(exp1_config)
    sections.append(
        "PACE bound policy (imputed-drop fraction): "
        + ", ".join(f"{k}={v:.1%}" for k, v in fractions.items())
    )

    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    argv = sys.argv[1:] if argv is None else argv
    include_figures = "--no-figures" not in argv
    sys.stdout.write(generate_report(include_figures=include_figures))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
