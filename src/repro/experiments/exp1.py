"""Experiment 1: the imputation query plan (Figures 5 and 6).

The plan of paper Figure 4(a)::

    SOURCE -> DUPLICATE -> σC  (clean)  ---------------\\
                        -> σ¬C (dirty) -> IMPUTE ------- PACE -> SINK

The source alternates clean and dirty tuples (5000 total).  IMPUTE issues
one archival lookup per dirty tuple, and the lookup cost exceeds the dirty
arrival interval, so IMPUTE falls steadily behind -- the divergence of
Figure 5.  PACE bounds the divergence at ``tolerance``:

* **without feedback** (Figure 5) IMPUTE grinds through its entire
  backlog; almost every imputed tuple arrives beyond the tolerance and is
  dropped at PACE *after* its lookup was paid for -- the paper measures
  97 % of imputed tuples dropped;
* **with feedback** (Figure 6) PACE issues ``¬[timestamp <= watermark -
  tolerance]``; IMPUTE's input guard discards already-late tuples at
  guard-check cost and spends the budget on tuples that can still be
  timely -- the paper measures only 29 % dropped.

A dropped imputed tuple is one that never reaches the sink, whether it
died late at PACE or was skipped at IMPUTE's guard; that matches the
paper's metric ("the number of timely tuples that appear in the query
result").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.api.flow import Flow
from repro.engine.plan import QueryPlan
from repro.engine.runtime import RunResult
from repro.operators.impute import Impute
from repro.operators.pace import Pace
from repro.operators.sink import CollectSink
from repro.workloads.imputation import SENSOR_SCHEMA, ImputationWorkload

__all__ = [
    "Exp1Config",
    "Exp1ArmResult",
    "build_flow",
    "build_plan",
    "run_experiment_1",
    "run_arm",
]


@dataclass(frozen=True)
class Exp1Config:
    """Parameters of Experiment 1 (defaults calibrated to the paper).

    With 0.04 s arrivals a dirty tuple lands every 0.08 s; a lookup costs
    0.105 s, so IMPUTE accrues ~0.025 s of lag per dirty tuple.  The 2 s
    tolerance is exhausted after ~80 dirty tuples -- without feedback
    everything after that is late (~97 % of 2500), while with feedback
    IMPUTE sheds exactly the unprocessable fraction
    (1 - 0.08/0.105 ~ 24 %, plus boundary effects ~ 30 %).
    """

    tuples: int = 5000
    arrival_interval: float = 0.04
    lookup_cost: float = 0.105
    clean_cost: float = 0.001
    tolerance: float = 2.0
    feedback_interval: float = 2.0
    page_size: int = 4
    seed: int = 13

    @classmethod
    def from_env(cls) -> "Exp1Config":
        """Default config, scaled down via REPRO_EXP1_TUPLES if set."""
        tuples = int(os.environ.get("REPRO_EXP1_TUPLES", "5000"))
        return cls(tuples=tuples)


@dataclass
class Exp1ArmResult:
    """One arm (feedback on/off) of Experiment 1."""

    feedback: bool
    total_clean: int
    total_dirty: int
    clean_delivered: int
    imputed_delivered: int
    imputed_dropped_at_pace: int
    imputed_dropped_at_impute: int
    feedback_messages: int
    lookups_performed: int
    makespan: float
    total_work: float
    # Figure series: (output_time, tuple_id) per class.
    clean_series: list[tuple[float, int]] = field(default_factory=list)
    imputed_series: list[tuple[float, int]] = field(default_factory=list)

    @property
    def imputed_dropped(self) -> int:
        return self.imputed_dropped_at_pace + self.imputed_dropped_at_impute

    @property
    def drop_fraction(self) -> float:
        """Fraction of imputed tuples missing from the timely result."""
        if self.total_dirty == 0:
            return 0.0
        return self.imputed_dropped / self.total_dirty

    def summary(self) -> str:
        label = "with feedback" if self.feedback else "no feedback"
        return (
            f"{label}: {self.drop_fraction:.1%} of imputed tuples dropped "
            f"({self.imputed_dropped}/{self.total_dirty}; "
            f"{self.imputed_dropped_at_impute} shed at IMPUTE, "
            f"{self.imputed_dropped_at_pace} late at PACE); "
            f"lookups={self.lookups_performed}, "
            f"work={self.total_work:.1f}s"
        )


#: Plan-operator names keyed by the short handles the result extraction
#: (and the historical operators dict) uses.
_OPERATOR_NAMES = {
    "source": "source", "duplicate": "duplicate", "clean": "sigma_c",
    "dirty": "sigma_not_c", "impute": "impute", "pace": "pace",
    "sink": "sink",
}


def build_flow(config: Exp1Config, *, feedback: bool) -> Flow:
    """The Figure 4(a) plan on the fluent surface (re-runnable)."""
    workload = ImputationWorkload(
        tuples=config.tuples,
        arrival_interval=config.arrival_interval,
        seed=config.seed,
    )
    schema = SENSOR_SCHEMA
    flow = Flow(
        f"exp1-{'fb' if feedback else 'nofb'}",
        page_size=config.page_size,
    )
    clean_tap, dirty_tap = (
        flow.source(schema, workload.timeline(), name="source")
            .split(name="duplicate")
    )
    clean = clean_tap.where(
        lambda t: t["speed"] is not None,
        name="sigma_c", tuple_cost=config.clean_cost,
    )
    imputed = dirty_tap.where(
        lambda t: t["speed"] is None,
        name="sigma_not_c", tuple_cost=config.clean_cost,
    ).apply(lambda: Impute(
        "impute", schema, workload.build_archive(),
        value_attribute="speed",
        lookup_cost=config.lookup_cost,
        tuple_cost=config.clean_cost,
    ))
    clean.pace(
        imputed,
        on="timestamp", interval=config.tolerance, name="pace",
        feedback_enabled=feedback,
        feedback_interval=config.feedback_interval,
    ).collect("sink")
    return flow


def build_plan(
    config: Exp1Config, *, feedback: bool
) -> tuple[QueryPlan, dict[str, object]]:
    """Build the Figure 4(a) plan; returns (plan, named operators)."""
    plan = build_flow(config, feedback=feedback).build()
    operators = {
        key: plan.operator(name) for key, name in _OPERATOR_NAMES.items()
    }
    return plan, operators


def run_arm(
    config: Exp1Config, *, feedback: bool, engine: str = "simulated"
) -> Exp1ArmResult:
    """Run one arm and extract the paper's measurements."""
    flow = build_flow(config, feedback=feedback)
    result: RunResult = flow.run(engine=engine)
    plan = result.plan
    sink: CollectSink = plan.operator("sink")  # type: ignore[assignment]
    impute: Impute = plan.operator("impute")   # type: ignore[assignment]
    pace: Pace = plan.operator("pace")         # type: ignore[assignment]

    total_dirty = config.tuples // 2
    total_clean = config.tuples - total_dirty
    clean_series: list[tuple[float, int]] = []
    imputed_series: list[tuple[float, int]] = []
    for time, tup in sink.arrivals:
        if tup["tuple_id"] % 2 == 1:
            imputed_series.append((time, tup["tuple_id"]))
        else:
            clean_series.append((time, tup["tuple_id"]))
    return Exp1ArmResult(
        feedback=feedback,
        total_clean=total_clean,
        total_dirty=total_dirty,
        clean_delivered=len(clean_series),
        imputed_delivered=len(imputed_series),
        imputed_dropped_at_pace=pace.late_drops_by_port[1],
        imputed_dropped_at_impute=impute.metrics.input_guard_drops,
        feedback_messages=pace.metrics.feedback_produced,
        lookups_performed=impute.archive.queries,
        makespan=result.makespan,
        total_work=result.total_work,
        clean_series=clean_series,
        imputed_series=imputed_series,
    )


def run_experiment_1(
    config: Exp1Config | None = None,
) -> dict[str, Exp1ArmResult]:
    """Both arms of Experiment 1: Figure 5 (no feedback), Figure 6 (with)."""
    config = config or Exp1Config.from_env()
    return {
        "no_feedback": run_arm(config, feedback=False),
        "with_feedback": run_arm(config, feedback=True),
    }
