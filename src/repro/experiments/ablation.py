"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations, each isolating one design decision of the paper:

1. **Localized vs centralized adaptation** (Figure 2).  The Experiment 2
   workload run with (a) localized feedback (scheme F3) and (b) a
   centralized monitor that consumes a copy of the stream and applies the
   same suppression decisions with a collection-cycle delay.  Reported:
   total work, tuples shipped to the decision point, messages sent.
2. **PACE feedback bound policy** (watermark vs tolerance).  Experiment 1
   run with the paper's aggressive "everything behind the watermark"
   declaration versus the conservative "only what the tolerance already
   condemns" variant -- showing why the aggressive bound is what makes
   catch-up possible.
3. **Feedback frequency overhead** (part of Figure 7's claim).  Scheme F3
   at increasingly aggressive switch frequencies, with non-zero control
   costs, quantifying the per-message overhead of feedback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.centralized import CentralizedMonitor
from repro.engine.simulator import Simulator
from repro.experiments.exp1 import Exp1Config, build_plan as build_exp1_plan
from repro.experiments.exp2 import (
    Exp2CellResult,
    Exp2Config,
    _build_plan,
    _viewer_schedule,
    run_cell,
)
from repro.operators.duplicate import Duplicate
from repro.operators.pace import Pace

__all__ = [
    "CentralizedComparison",
    "run_centralized_ablation",
    "run_pace_bound_ablation",
    "run_frequency_overhead_ablation",
]


@dataclass
class CentralizedComparison:
    """Localized feedback vs centralized monitor on the same workload."""

    localized_work: float
    centralized_work: float
    localized_messages: int
    centralized_data_shipped: int
    centralized_decisions: int

    def summary(self) -> str:
        return (
            f"localized: work={self.localized_work:.1f}s with "
            f"{self.localized_messages} feedback messages;  "
            f"centralized: work={self.centralized_work:.1f}s, "
            f"{self.centralized_data_shipped} tuples shipped to the "
            f"monitor, {self.centralized_decisions} decision cycles"
        )


def run_centralized_ablation(
    config: Exp2Config | None = None,
    *,
    switch_minutes: float = 2.0,
    transfer_cost: float = 0.0003,
    decision_interval: float = 60.0,
) -> CentralizedComparison:
    """Figure 2 quantified on the Experiment 2 workload.

    The centralized arm duplicates the parsed stream into a
    :class:`CentralizedMonitor` (shipping + inspection cost per tuple) and
    applies the viewer's suppression decisions one collection cycle late
    by injecting the same feedback patterns at the sink, delayed by
    ``decision_interval``.
    """
    config = config or Exp2Config()

    # -- localized arm: plain scheme F3 -------------------------------------
    localized = run_cell(config, "F3", switch_minutes)

    # -- centralized arm -----------------------------------------------------
    plan, ops = _build_plan(config, "F3")
    average, sink = ops["average"], ops["sink"]
    monitor = CentralizedMonitor(
        "monitor",
        ops["parse"].output_schema,
        timestamp_attribute="timestamp",
        transfer_cost=transfer_cost,
        decision_interval=decision_interval,
    )
    # Splice a duplicate above PARSE so the monitor sees the raw stream.
    duplicate = Duplicate("monitor_tap", ops["parse"].output_schema)
    plan.add(monitor)
    plan.add(duplicate)
    parse = ops["parse"]
    # Rewire: parse -> duplicate -> (quality, monitor).  parse currently
    # feeds quality directly; replace that edge's consumer by the tap.
    quality = ops["quality"]
    old_edge = parse.outputs[0]
    parse.outputs.clear()
    quality.inputs[0] = None
    plan.connect(parse, duplicate, page_size=config.page_size)
    plan.connect(duplicate, quality, page_size=config.page_size)
    plan.connect(duplicate, monitor, page_size=config.page_size)

    simulator = Simulator(plan)
    for when, feedback in _viewer_schedule(
        config, switch_minutes, average, sink
    ):
        delayed = when + decision_interval
        simulator.at(
            delayed, lambda fb=feedback: sink.inject_feedback(fb)
        )
    result = simulator.run()
    return CentralizedComparison(
        localized_work=localized.execution_time,
        centralized_work=result.total_work,
        localized_messages=localized.feedback_messages,
        centralized_data_shipped=monitor.data_shipped,
        centralized_decisions=monitor.decisions_made,
    )


def run_pace_bound_ablation(
    config: Exp1Config | None = None,
) -> dict[str, float]:
    """Drop fractions of Experiment 1 under the two PACE bound policies."""
    config = config or Exp1Config()
    fractions: dict[str, float] = {}
    for policy in ("watermark", "tolerance"):
        plan, ops = build_exp1_plan(config, feedback=True)
        pace: Pace = ops["pace"]  # type: ignore[assignment]
        pace.feedback_bound = policy
        Simulator(plan).run()
        impute = ops["impute"]
        dropped = (
            pace.late_drops_by_port[1]
            + impute.metrics.input_guard_drops  # type: ignore[union-attr]
        )
        fractions[policy] = dropped / (config.tuples // 2)
    return fractions


def run_frequency_overhead_ablation(
    config: Exp2Config | None = None,
    *,
    frequencies: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 6.0),
) -> dict[float, Exp2CellResult]:
    """Scheme F3 under increasingly chatty viewers.

    The paper reports "no discernible overhead" from 2-6 minute switch
    intervals; this ablation pushes to 30-second switching to find where
    (whether) control costs start to register.
    """
    config = config or Exp2Config()
    return {
        frequency: run_cell(config, "F3", frequency)
        for frequency in frequencies
    }
