"""Experiment drivers shared by the benchmark harness and the examples.

* :mod:`repro.experiments.exp1` -- the imputation plan (Figures 5-6);
* :mod:`repro.experiments.exp2` -- the speed-map schemes (Figure 7);
* :mod:`repro.experiments.ablation` -- centralized-vs-localized,
  PACE bound policy, and feedback-frequency overhead studies.
"""

from repro.experiments.ablation import (
    CentralizedComparison,
    run_centralized_ablation,
    run_frequency_overhead_ablation,
    run_pace_bound_ablation,
)
from repro.experiments.exp1 import (
    Exp1ArmResult,
    Exp1Config,
    run_arm,
    run_experiment_1,
)
from repro.experiments.exp2 import (
    SCHEMES,
    Exp2CellResult,
    Exp2Config,
    run_cell,
    run_experiment_2,
)

__all__ = [
    "CentralizedComparison",
    "Exp1ArmResult",
    "Exp1Config",
    "Exp2CellResult",
    "Exp2Config",
    "SCHEMES",
    "run_arm",
    "run_cell",
    "run_centralized_ablation",
    "run_experiment_1",
    "run_experiment_2",
    "run_frequency_overhead_ablation",
    "run_pace_bound_ablation",
]
