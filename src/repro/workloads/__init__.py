"""Workload generators (system S7 in DESIGN.md).

Deterministic synthetic stand-ins for the paper's data sources: the
Portland traffic feed (detectors + probe vehicles), the alternating
clean/dirty imputation stream, a financial tick stream, and disorder/burst
injectors.
"""

from repro.workloads.auction import AuctionWorkload, BID_SCHEMA
from repro.workloads.disorder import (
    inject_bursts,
    inject_disorder,
    merge_timelines,
)
from repro.workloads.finance import FinanceWorkload, TICK_SCHEMA
from repro.workloads.imputation import ImputationWorkload, SENSOR_SCHEMA
from repro.workloads.traffic import (
    DETECTOR_SCHEMA,
    PROBE_SCHEMA,
    TrafficModel,
    TrafficWorkload,
)

__all__ = [
    "AuctionWorkload",
    "BID_SCHEMA",
    "DETECTOR_SCHEMA",
    "FinanceWorkload",
    "ImputationWorkload",
    "PROBE_SCHEMA",
    "SENSOR_SCHEMA",
    "TICK_SCHEMA",
    "TrafficModel",
    "TrafficWorkload",
    "inject_bursts",
    "inject_disorder",
    "merge_timelines",
]
