"""Synthetic traffic workload: the paper's speed-map scenario.

The paper's motivating application (Figure 1) and Experiment 2 run on
Portland-metro loop-detector data.  That feed is proprietary, so this
module generates a synthetic equivalent with the published shape:

* a freeway network of ``segments`` segments with ``detectors_per_segment``
  fixed detectors each;
* every detector reports ``(detector_id, segment, timestamp, speed)`` once
  per ``report_interval`` (the paper: one report per segment every 20 s,
  9 segments x 40 detectors, 18 h of data ~= 1.17 M tuples);
* traffic state follows a day curve with congestion waves: free-flow speed
  ~60 mph, rush-hour troughs where congested segments drop below 45 mph
  (the query's congestion threshold), plus white noise;
* optional sensor dropouts produce None speeds (the dirty tuples of the
  imputation scenario);
* probe vehicles emit ``(vehicle_id, segment, timestamp, speed)`` GPS
  readings at a per-segment rate proportional to detector speed (slower
  traffic, more vehicles present).

All randomness goes through an explicit seed; two generators with the same
parameters produce identical streams.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import WorkloadError
from repro.stream.schema import Attribute, Schema
from repro.stream.tuples import StreamTuple

__all__ = [
    "DETECTOR_SCHEMA",
    "PROBE_SCHEMA",
    "TrafficModel",
    "TrafficWorkload",
]

DETECTOR_SCHEMA = Schema([
    Attribute("detector_id", "int"),
    Attribute("segment", "int"),
    Attribute("timestamp", "timestamp", progressing=True),
    Attribute("speed", "float"),
])

PROBE_SCHEMA = Schema([
    Attribute("vehicle_id", "int"),
    Attribute("segment", "int"),
    Attribute("timestamp", "timestamp", progressing=True),
    Attribute("speed", "float"),
])


@dataclass(frozen=True)
class TrafficModel:
    """Parameters of the synthetic traffic state.

    ``congested_segments`` dip into congestion during the rush window;
    everything else cruises near free flow.
    """

    free_flow_speed: float = 60.0
    congested_speed: float = 25.0
    congestion_threshold: float = 45.0
    rush_start: float = 0.25   # fraction of the horizon
    rush_end: float = 0.60
    noise: float = 3.0
    congested_segments: tuple[int, ...] = (0, 3, 7)

    def mean_speed(self, segment: int, phase: float) -> float:
        """Mean speed for a segment at ``phase`` in [0, 1] of the horizon."""
        if segment not in self.congested_segments:
            return self.free_flow_speed
        if not self.rush_start <= phase <= self.rush_end:
            return self.free_flow_speed
        # Smooth dip: cosine ramp into and out of congestion.
        span = self.rush_end - self.rush_start
        local = (phase - self.rush_start) / span
        depth = 0.5 - 0.5 * math.cos(2 * math.pi * local)
        return (
            self.free_flow_speed
            - depth * (self.free_flow_speed - self.congested_speed)
        )


@dataclass
class TrafficWorkload:
    """Generator of detector and probe streams for one traffic scenario."""

    segments: int = 9
    detectors_per_segment: int = 40
    report_interval: float = 20.0
    horizon: float = 18 * 3600.0
    seed: int = 7
    model: TrafficModel = field(default_factory=TrafficModel)
    dropout_rate: float = 0.0       # fraction of detector reports gone dirty
    probes_per_segment: float = 0.0  # mean probe reports per segment/interval

    def __post_init__(self) -> None:
        if self.segments < 1 or self.detectors_per_segment < 1:
            raise WorkloadError("need at least one segment and detector")
        if self.report_interval <= 0 or self.horizon <= 0:
            raise WorkloadError("report_interval and horizon must be > 0")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise WorkloadError("dropout_rate must be in [0, 1)")

    # -- sizing ------------------------------------------------------------------

    @property
    def reports_per_interval(self) -> int:
        return self.segments * self.detectors_per_segment

    @property
    def intervals(self) -> int:
        return int(self.horizon // self.report_interval)

    @property
    def detector_tuple_count(self) -> int:
        return self.reports_per_interval * self.intervals

    # -- detector stream ------------------------------------------------------------

    def detector_events(self) -> Iterator[tuple[float, StreamTuple]]:
        """Yield ``(arrival_time, tuple)`` for the full detector stream.

        Arrival time equals the report timestamp (the stream is in order;
        disorder is injected, when wanted, by
        :mod:`repro.workloads.disorder`).
        """
        rng = random.Random(self.seed)
        for interval in range(self.intervals):
            timestamp = interval * self.report_interval
            phase = timestamp / self.horizon
            for segment in range(self.segments):
                mean = self.model.mean_speed(segment, phase)
                for local_id in range(self.detectors_per_segment):
                    detector_id = segment * self.detectors_per_segment + local_id
                    if (
                        self.dropout_rate > 0.0
                        and rng.random() < self.dropout_rate
                    ):
                        speed = None
                    else:
                        speed = max(
                            1.0, rng.gauss(mean, self.model.noise)
                        )
                    yield timestamp, StreamTuple(
                        DETECTOR_SCHEMA,
                        (detector_id, segment, timestamp, speed),
                    )

    # -- probe stream ------------------------------------------------------------------

    def probe_events(self) -> Iterator[tuple[float, StreamTuple]]:
        """Yield probe-vehicle GPS readings.

        The per-interval count per segment is Poisson-ish around
        ``probes_per_segment``, scaled up when the segment is congested
        (slow traffic accumulates vehicles).
        """
        if self.probes_per_segment <= 0:
            return
        rng = random.Random(self.seed + 1)
        vehicle_counter = 0
        for interval in range(self.intervals):
            base_time = interval * self.report_interval
            phase = base_time / self.horizon
            for segment in range(self.segments):
                mean_speed = self.model.mean_speed(segment, phase)
                density_boost = self.model.free_flow_speed / max(
                    mean_speed, 5.0
                )
                expected = self.probes_per_segment * density_boost
                count = self._poisson(rng, expected)
                for _ in range(count):
                    vehicle_counter += 1
                    offset = rng.uniform(0, self.report_interval)
                    speed = max(
                        1.0, rng.gauss(mean_speed, self.model.noise * 1.5)
                    )
                    yield base_time + offset, StreamTuple(
                        PROBE_SCHEMA,
                        (
                            vehicle_counter,
                            segment,
                            base_time + offset,
                            speed,
                        ),
                    )

    @staticmethod
    def _poisson(rng: random.Random, mean: float) -> int:
        """Knuth's Poisson sampler (small means only)."""
        threshold = math.exp(-mean)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count

    # -- convenience ------------------------------------------------------------------

    def detector_timeline(self) -> list[tuple[float, StreamTuple]]:
        return list(self.detector_events())

    def probe_timeline(self) -> list[tuple[float, StreamTuple]]:
        return sorted(self.probe_events(), key=lambda pair: pair[0])
