"""Financial tick workload: the demanded-punctuation scenario.

Section 3.4's demanded example: a currency speculator with a margin of
action of a few seconds wants a best-guess trend estimate *now* -- "partial
results are better than no results, or seeing results after the end of the
margin of action."

The stream is a random-walk exchange rate ``(timestamp, pair_id, rate)``
aggregated into fixed windows; a demanded punctuation ``![window, pair]``
makes the aggregate emit its current partial average before the window
closes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.stream.schema import Attribute, Schema
from repro.stream.tuples import StreamTuple

__all__ = ["TICK_SCHEMA", "FinanceWorkload"]

TICK_SCHEMA = Schema([
    Attribute("timestamp", "timestamp", progressing=True),
    Attribute("pair_id", "int"),
    Attribute("rate", "float"),
])


@dataclass
class FinanceWorkload:
    """Random-walk exchange-rate ticks for a few currency pairs."""

    pairs: int = 4
    ticks_per_second: float = 20.0
    horizon: float = 60.0
    initial_rate: float = 1.0
    volatility: float = 0.0004
    seed: int = 99

    def __post_init__(self) -> None:
        if self.pairs < 1 or self.ticks_per_second <= 0 or self.horizon <= 0:
            raise WorkloadError("invalid finance workload parameters")

    def events(self) -> Iterator[tuple[float, StreamTuple]]:
        rng = random.Random(self.seed)
        rates = [
            self.initial_rate * (1 + 0.05 * i) for i in range(self.pairs)
        ]
        interval = 1.0 / self.ticks_per_second
        steps = int(self.horizon * self.ticks_per_second)
        for step in range(steps):
            timestamp = step * interval
            pair = step % self.pairs
            rates[pair] *= 1.0 + rng.gauss(0.0, self.volatility)
            yield timestamp, StreamTuple(
                TICK_SCHEMA, (timestamp, pair, rates[pair])
            )

    def timeline(self) -> list[tuple[float, StreamTuple]]:
        return list(self.events())
