"""Bid-auction workload: the supportability example of paper section 4.4.

The paper grounds feedback *supportability* in a bid-auction stream:

* "Do not show bids prior to 1:00 p.m." -- supportable: timestamps are
  punctuated, so the guard eventually expires;
* "Do not produce results related to bidder #2 for auction #4" --
  supportable: state "will be cleansed when auction #4 finishes" (the
  close punctuation delimits the auction attribute);
* "Don't show bids more than $1.00" -- **unsupportable**: nothing
  punctuates amounts, the guard would live forever ("the user should have
  issued a different query").

:class:`AuctionWorkload` generates exactly that stream: bids over a set of
auctions with staggered close times, timestamp progress punctuation, and a
``group_done`` punctuation per auction at its close -- two delimited
attributes, amounts deliberately undelimited.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.punctuation.embedded import Punctuation
from repro.punctuation.schemes import ProgressPunctuator, PunctuationScheme
from repro.stream.schema import Attribute, Schema
from repro.stream.tuples import StreamTuple

__all__ = ["BID_SCHEMA", "AuctionWorkload"]

BID_SCHEMA = Schema([
    Attribute("auction_id", "int"),
    Attribute("bidder_id", "int"),
    Attribute("timestamp", "timestamp", progressing=True),
    Attribute("amount", "float"),
])


@dataclass
class AuctionWorkload:
    """Bids over staggered auctions, fully punctuated.

    Auction *i* opens at ``i * stagger`` and closes ``duration`` later.
    Bids arrive uniformly while an auction is open, with amounts drifting
    upward (later bids bid higher).
    """

    auctions: int = 8
    bidders: int = 20
    bids_per_auction: int = 50
    duration: float = 60.0
    stagger: float = 15.0
    seed: int = 77

    def __post_init__(self) -> None:
        if self.auctions < 1 or self.bidders < 1 or self.bids_per_auction < 1:
            raise WorkloadError("auctions, bidders and bids must be >= 1")
        if self.duration <= 0 or self.stagger < 0:
            raise WorkloadError("duration must be > 0 and stagger >= 0")

    @property
    def horizon(self) -> float:
        return (self.auctions - 1) * self.stagger + self.duration

    def close_time(self, auction_id: int) -> float:
        return auction_id * self.stagger + self.duration

    def scheme(self) -> PunctuationScheme:
        """Timestamps and auction ids are delimited; amounts are not."""
        return PunctuationScheme(
            BID_SCHEMA, delimited=["timestamp", "auction_id"]
        )

    def events(self) -> Iterator[tuple[float, object]]:
        """Bids plus progress and auction-close punctuation, in order."""
        rng = random.Random(self.seed)
        bids: list[tuple[float, StreamTuple]] = []
        for auction in range(self.auctions):
            open_at = auction * self.stagger
            for _ in range(self.bids_per_auction):
                offset = rng.uniform(0.0, self.duration)
                amount = round(
                    0.5 + offset / self.duration + rng.uniform(0, 0.5), 2
                )
                bids.append((
                    open_at + offset,
                    StreamTuple(
                        BID_SCHEMA,
                        (auction, rng.randrange(self.bidders),
                         open_at + offset, amount),
                    ),
                ))
        bids.sort(key=lambda pair: pair[0])

        punctuator = ProgressPunctuator(
            BID_SCHEMA, "timestamp", interval=self.duration / 4,
        )
        closes = [
            (self.close_time(a), a) for a in range(self.auctions)
        ]
        close_index = 0
        for arrival, bid in bids:
            while (
                close_index < len(closes)
                and closes[close_index][0] <= arrival
            ):
                when, auction = closes[close_index]
                yield when, Punctuation.group_done(
                    BID_SCHEMA, {"auction_id": auction}, source="auctioneer"
                )
                close_index += 1
            yield arrival, bid
            for punct in punctuator.observe(bid["timestamp"]):
                yield arrival, punct
        for when, auction in closes[close_index:]:
            yield when, Punctuation.group_done(
                BID_SCHEMA, {"auction_id": auction}, source="auctioneer"
            )
        yield self.horizon, punctuator.final()

    def timeline(self) -> list[tuple[float, object]]:
        return list(self.events())
