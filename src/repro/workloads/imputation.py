"""Imputation workload: Experiment 1's alternating clean/dirty stream.

The paper induces "an extreme case in which tuples that require imputation
alternate with non-imputed tuples in the stream" -- 5000 tuples total.
This module builds exactly that stream plus the historical archive the
simulated archival database answers from.

The timing knobs reproduce the dynamics of Figures 5 and 6:

* tuples arrive every ``arrival_interval`` virtual seconds (5000 tuples
  over ~200 s matches the figures' x-axis with the default 0.04 s);
* the clean path costs ``clean_cost`` per tuple -- negligible;
* one archival lookup costs ``lookup_cost`` -- chosen so IMPUTE runs
  slower than the dirty-tuple arrival rate and falls steadily behind,
  exactly the divergence the paper plots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.operators.impute import ArchiveDB
from repro.stream.schema import Attribute, Schema
from repro.stream.tuples import StreamTuple

__all__ = ["SENSOR_SCHEMA", "ImputationWorkload"]

SENSOR_SCHEMA = Schema([
    Attribute("tuple_id", "int"),
    Attribute("sensor_id", "int"),
    Attribute("timestamp", "timestamp", progressing=True),
    Attribute("speed", "float"),
])


@dataclass
class ImputationWorkload:
    """Alternating clean/dirty sensor stream plus its archive."""

    tuples: int = 5000
    sensors: int = 50
    arrival_interval: float = 0.04
    base_speed: float = 55.0
    noise: float = 4.0
    seed: int = 13
    history_per_sensor: int = 20

    def __post_init__(self) -> None:
        if self.tuples < 2:
            raise WorkloadError("need at least two tuples")
        if self.arrival_interval <= 0:
            raise WorkloadError("arrival_interval must be > 0")

    @property
    def horizon(self) -> float:
        return self.tuples * self.arrival_interval

    def events(self) -> Iterator[tuple[float, StreamTuple]]:
        """The input stream: even tuple ids clean, odd ids dirty (None)."""
        rng = random.Random(self.seed)
        for tuple_id in range(self.tuples):
            arrival = tuple_id * self.arrival_interval
            sensor_id = tuple_id % self.sensors
            if tuple_id % 2 == 1:
                speed = None
            else:
                speed = max(1.0, rng.gauss(self.base_speed, self.noise))
            yield arrival, StreamTuple(
                SENSOR_SCHEMA, (tuple_id, sensor_id, arrival, speed)
            )

    def timeline(self) -> list[tuple[float, StreamTuple]]:
        return list(self.events())

    def build_archive(self) -> ArchiveDB:
        """Historical per-sensor speeds for the simulated archival DB."""
        rng = random.Random(self.seed + 1)
        archive = ArchiveDB(
            key_fn=lambda tup: tup["sensor_id"],
            value_attribute="speed",
            default=self.base_speed,
        )
        history = []
        for sensor_id in range(self.sensors):
            for _ in range(self.history_per_sensor):
                history.append(
                    StreamTuple(
                        SENSOR_SCHEMA,
                        (
                            -1,
                            sensor_id,
                            -1.0,
                            max(1.0, rng.gauss(self.base_speed, self.noise)),
                        ),
                    )
                )
        archive.load(history)
        return archive

    @property
    def dirty_count(self) -> int:
        return self.tuples // 2

    @property
    def clean_count(self) -> int:
        return self.tuples - self.dirty_count
