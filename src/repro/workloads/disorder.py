"""Disorder and burst injection for arrival timelines.

The paper targets "distributed, unreliable, bursty, disordered data
sources".  These utilities perturb any ``(arrival_time, element)`` timeline:

* :func:`inject_disorder` delays a random subset of elements, producing
  out-of-order arrival (tuple timestamps keep their original values -- the
  OOP architecture handles the skew via punctuation);
* :func:`inject_bursts` compresses periodic stretches of the timeline into
  near-instant bursts, keeping the average rate;
* :func:`merge_timelines` interleaves several timelines by arrival time.

All functions are deterministic under an explicit seed and keep the
returned timeline sorted by arrival time (that is what sources replay).
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.errors import WorkloadError

__all__ = ["inject_disorder", "inject_bursts", "merge_timelines"]

Timeline = list[tuple[float, Any]]


def inject_disorder(
    timeline: Sequence[tuple[float, Any]],
    *,
    fraction: float,
    max_delay: float,
    seed: int = 0,
) -> Timeline:
    """Delay a ``fraction`` of elements by up to ``max_delay`` seconds.

    Delayed elements arrive late relative to their neighbours, so any
    downstream operator keyed on tuple timestamps observes disorder.
    """
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction must be in [0, 1]: {fraction}")
    if max_delay < 0:
        raise WorkloadError(f"max_delay must be >= 0: {max_delay}")
    rng = random.Random(seed)
    perturbed: Timeline = []
    for arrival, element in timeline:
        if rng.random() < fraction:
            arrival = arrival + rng.uniform(0.0, max_delay)
        perturbed.append((arrival, element))
    perturbed.sort(key=lambda pair: pair[0])
    return perturbed


def inject_bursts(
    timeline: Sequence[tuple[float, Any]],
    *,
    period: float,
    burst_fraction: float = 0.1,
    seed: int = 0,
) -> Timeline:
    """Compress each period's arrivals into its first ``burst_fraction``.

    Elements keep their relative order; only arrival times change.  The
    result models sources that buffer and flush (bursty networks).
    """
    if period <= 0:
        raise WorkloadError(f"period must be > 0: {period}")
    if not 0.0 < burst_fraction <= 1.0:
        raise WorkloadError(
            f"burst_fraction must be in (0, 1]: {burst_fraction}"
        )
    compressed: Timeline = []
    for arrival, element in timeline:
        period_index = int(arrival // period)
        offset = arrival - period_index * period
        compressed.append(
            (period_index * period + offset * burst_fraction, element)
        )
    compressed.sort(key=lambda pair: pair[0])
    return compressed


def merge_timelines(*timelines: Sequence[tuple[float, Any]]) -> Timeline:
    """Interleave timelines by arrival time (stable across inputs)."""
    merged: Timeline = []
    for timeline in timelines:
        merged.extend(timeline)
    merged.sort(key=lambda pair: pair[0])
    return merged
