"""Punctuation mini-language (system S8 in DESIGN.md)."""

from repro.lang.query import Catalog, compile_flow, compile_query
from repro.lang.punctlang import (
    format_feedback,
    format_pattern,
    parse_feedback,
    parse_pattern,
    parse_punctuation,
)

__all__ = [
    "Catalog",
    "compile_flow",
    "compile_query",
    "format_feedback",
    "format_pattern",
    "parse_feedback",
    "parse_pattern",
    "parse_punctuation",
]
