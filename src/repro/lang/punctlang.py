"""The punctuation mini-language: parse and print the paper's notation.

The paper writes patterns and punctuations as bracketed atom lists::

    [*, *, <='2008-12-08 9:00']     embedded punctuation
    ¬[*, >=50]                      assumed feedback
    ?[7, 3, *]                      desired feedback
    ![<=5, *]                       demanded feedback

This module turns those strings into library objects and back.  Grammar::

    feedback    := intent pattern
    intent      := '¬' | '~' | '?' | '!'
    pattern     := '[' atom (',' atom)* ']'
    atom        := '*' | comparison | set | literal
    comparison  := ('<=' | '>=' | '<' | '>' | '=') literal
    set         := 'in' '{' literal (',' literal)* '}'
    literal     := number | quoted string | bareword

Numbers parse as int when possible, then float; anything quoted (single or
double) is a string; barewords are strings too.  ``~`` is accepted for
``¬`` so feedback literals can be typed in plain ASCII.
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackIntent, FeedbackPunctuation
from repro.errors import PatternError
from repro.punctuation.atoms import (
    AtLeast,
    AtMost,
    Atom,
    Equals,
    GreaterThan,
    InSet,
    LessThan,
    WILDCARD,
)
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema

__all__ = [
    "parse_pattern",
    "parse_punctuation",
    "parse_feedback",
    "format_pattern",
    "format_feedback",
]

_INTENT_GLYPHS = {"¬", "~", "?", "!"}


class _Scanner:
    """Minimal cursor over the source text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self, expected: str) -> None:
        self.skip_ws()
        if not self.text.startswith(expected, self.pos):
            raise PatternError(
                f"expected {expected!r} at position {self.pos} in "
                f"{self.text!r}"
            )
        self.pos += len(expected)

    def try_take(self, expected: str) -> bool:
        self.skip_ws()
        if self.text.startswith(expected, self.pos):
            self.pos += len(expected)
            return True
        return False

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def _parse_literal(scanner: _Scanner) -> Any:
    scanner.skip_ws()
    ch = scanner.peek()
    if ch in ("'", '"'):
        quote = ch
        scanner.pos += 1
        start = scanner.pos
        while scanner.pos < len(scanner.text) and scanner.text[scanner.pos] != quote:
            scanner.pos += 1
        if scanner.pos >= len(scanner.text):
            raise PatternError(f"unterminated string in {scanner.text!r}")
        value = scanner.text[start:scanner.pos]
        scanner.pos += 1
        return value
    start = scanner.pos
    while scanner.pos < len(scanner.text) and scanner.text[scanner.pos] not in ",]}":
        scanner.pos += 1
    raw = scanner.text[start:scanner.pos].strip()
    if not raw:
        raise PatternError(f"empty literal at position {start} in {scanner.text!r}")
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    if raw == "None":
        return None
    if raw in ("True", "False"):
        return raw == "True"
    return raw


def _parse_atom(scanner: _Scanner) -> Atom:
    scanner.skip_ws()
    if scanner.try_take("*"):
        return WILDCARD
    if scanner.try_take("in"):
        scanner.take("{")
        values = [_parse_literal(scanner)]
        while scanner.try_take(","):
            values.append(_parse_literal(scanner))
        scanner.take("}")
        return InSet(values)
    for token, factory in (
        ("<=", AtMost), (">=", AtLeast),
        ("≤", AtMost), ("≥", AtLeast),
        ("<", LessThan), (">", GreaterThan),
        ("=", Equals),
    ):
        if scanner.try_take(token):
            return factory(_parse_literal(scanner))
    return Equals(_parse_literal(scanner))


def parse_pattern(text: str, schema: Schema | None = None) -> Pattern:
    """Parse ``[atom, atom, ...]`` into a :class:`Pattern`."""
    scanner = _Scanner(text)
    scanner.take("[")
    atoms = [_parse_atom(scanner)]
    while scanner.try_take(","):
        atoms.append(_parse_atom(scanner))
    scanner.take("]")
    if not scanner.at_end():
        raise PatternError(f"trailing input after pattern: {text!r}")
    return Pattern(atoms, schema=schema)


def parse_punctuation(text: str, schema: Schema | None = None) -> Punctuation:
    """Parse an embedded punctuation literal (a bare pattern)."""
    return Punctuation(parse_pattern(text, schema=schema))


def parse_feedback(
    text: str,
    schema: Schema | None = None,
    *,
    issuer: str = "",
) -> FeedbackPunctuation:
    """Parse an intent-prefixed literal like ``¬[*, >=50]`` or ``?[7,3,*]``."""
    stripped = text.strip()
    if not stripped or stripped[0] not in _INTENT_GLYPHS:
        raise PatternError(
            f"feedback literal must start with one of "
            f"{sorted(_INTENT_GLYPHS)}: {text!r}"
        )
    intent = FeedbackIntent.from_glyph(stripped[0])
    pattern = parse_pattern(stripped[1:], schema=schema)
    return FeedbackPunctuation(intent, pattern, issuer=issuer)


def _format_atom(atom: Atom) -> str:
    if atom.is_wildcard:
        return "*"
    if isinstance(atom, Equals):
        return _format_literal(atom.value)
    if isinstance(atom, AtMost):
        return f"<={_format_literal(atom.value)}"
    if isinstance(atom, AtLeast):
        return f">={_format_literal(atom.value)}"
    if isinstance(atom, LessThan):
        return f"<{_format_literal(atom.value)}"
    if isinstance(atom, GreaterThan):
        return f">{_format_literal(atom.value)}"
    if isinstance(atom, InSet):
        inner = ", ".join(
            _format_literal(v) for v in sorted(atom.values, key=repr)
        )
        return f"in{{{inner}}}"
    return repr(atom)  # intervals fall back to repr


def _format_literal(value: Any) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


def format_pattern(pattern: Pattern) -> str:
    """Render a pattern in the paper's bracket notation (parse-roundtrip)."""
    return "[" + ", ".join(_format_atom(a) for a in pattern.atoms) + "]"


def format_feedback(feedback: FeedbackPunctuation) -> str:
    """Render feedback with its intent glyph, e.g. ``¬[*, >=50]``."""
    return feedback.intent.glyph + format_pattern(feedback.pattern)
