"""A mini query language compiling to query plans.

Section 3.3 of the paper sketches a SQL-like surface for explicit feedback
policies::

    SELECT *
    FROM stream1 UNION stream2
    WITH PACE ON MAX(stream1.time, stream2.time) 1 MINUTE

This module implements a small language in that spirit, compiled straight
onto the operator library::

    SELECT *                                   (or a projection list)
    FROM <stream> [UNION <stream> ...]
    [WHERE <attr> <op> <literal> [AND ...]]
    [AGGREGATE <kind>(<attr>) GROUP BY <attr>[, ...]
        WINDOW <n> [SLIDE <n>] ON <attr>]
    [WITH PACE ON <attr> <n> [SECOND[S]|MINUTE[S]]]

Streams are named in a :class:`Catalog` mapping stream name to a schema
plus an arrival timeline.  ``compile_query`` returns a ready-to-run
:class:`~repro.engine.plan.QueryPlan` whose sink is named ``"result"``.

The language is deliberately small — it exists to show the feedback
machinery slotting under a declarative surface (PACE clauses become
feedback-producing operators), not to be a SQL implementation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.engine.plan import QueryPlan
from repro.errors import PlanError
from repro.operators.aggregate import AggregateKind, WindowAggregate
from repro.operators.pace import Pace
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.sink import CollectSink
from repro.operators.source import ListSource
from repro.operators.union import Union
from repro.punctuation.atoms import (
    AtLeast,
    AtMost,
    Atom,
    Equals,
    GreaterThan,
    LessThan,
)
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema

__all__ = ["Catalog", "compile_query"]


@dataclass
class Catalog:
    """Available streams: name -> (schema, timeline)."""

    streams: dict[str, tuple[Schema, list]]

    def lookup(self, name: str) -> tuple[Schema, list]:
        try:
            return self.streams[name]
        except KeyError:
            raise PlanError(f"unknown stream {name!r}") from None


_TIME_UNITS = {
    "second": 1.0, "seconds": 1.0,
    "minute": 60.0, "minutes": 60.0,
    "hour": 3600.0, "hours": 3600.0,
}

_COMPARATORS: dict[str, type] = {
    "<=": AtMost, ">=": AtLeast, "<": LessThan, ">": GreaterThan,
    "=": Equals,
}


@dataclass
class _ParsedQuery:
    projection: list[str] | None
    streams: list[str]
    where: list[tuple[str, str, Any]]
    aggregate: dict[str, Any] | None
    pace: dict[str, Any] | None


def _parse_literal(text: str) -> Any:
    text = text.strip()
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _parse(query: str) -> _ParsedQuery:
    flat = " ".join(query.split())
    pattern = re.compile(
        r"^SELECT\s+(?P<projection>\*|[\w\s,.]+?)\s+"
        r"FROM\s+(?P<streams>[\w\s]+?)"
        r"(?:\s+WHERE\s+(?P<where>.+?))?"
        r"(?:\s+AGGREGATE\s+(?P<agg_kind>\w+)\((?P<agg_attr>\*|\w+)\)"
        r"\s+GROUP\s+BY\s+(?P<group_by>[\w\s,]+?)"
        r"\s+WINDOW\s+(?P<window>[\d.]+)"
        r"(?:\s+SLIDE\s+(?P<slide>[\d.]+))?"
        r"\s+ON\s+(?P<window_attr>\w+))?"
        r"(?:\s+WITH\s+PACE\s+ON\s+(?P<pace_attr>\w+)"
        r"\s+(?P<pace_n>[\d.]+)(?:\s+(?P<pace_unit>\w+))?)?$",
        re.IGNORECASE,
    )
    match = pattern.match(flat.strip().rstrip(";"))
    if match is None:
        raise PlanError(f"cannot parse query: {query!r}")
    groups = match.groupdict()

    projection = None
    if groups["projection"].strip() != "*":
        projection = [a.strip() for a in groups["projection"].split(",")]

    streams = [
        s.strip() for s in re.split(
            r"\s+UNION\s+", groups["streams"], flags=re.IGNORECASE
        )
    ]

    where: list[tuple[str, str, Any]] = []
    if groups["where"]:
        for clause in re.split(r"\s+AND\s+", groups["where"],
                               flags=re.IGNORECASE):
            m = re.match(
                r"^(\w+)\s*(<=|>=|<|>|=)\s*(.+)$", clause.strip()
            )
            if m is None:
                raise PlanError(f"cannot parse WHERE clause {clause!r}")
            where.append((m.group(1), m.group(2), _parse_literal(m.group(3))))

    aggregate = None
    if groups["agg_kind"]:
        kind = groups["agg_kind"].lower()
        if kind not in AggregateKind.ALL:
            raise PlanError(f"unknown aggregate {kind!r}")
        aggregate = {
            "kind": kind,
            "attr": None if groups["agg_attr"] == "*" else groups["agg_attr"],
            "group_by": [g.strip() for g in groups["group_by"].split(",")],
            "window": float(groups["window"]),
            "slide": float(groups["slide"]) if groups["slide"] else None,
            "window_attr": groups["window_attr"],
        }

    pace = None
    if groups["pace_attr"]:
        unit = (groups["pace_unit"] or "seconds").lower()
        if unit not in _TIME_UNITS:
            raise PlanError(f"unknown time unit {unit!r}")
        pace = {
            "attr": groups["pace_attr"],
            "tolerance": float(groups["pace_n"]) * _TIME_UNITS[unit],
        }
    return _ParsedQuery(projection, streams, where, aggregate, pace)


def compile_query(
    query: str,
    catalog: Catalog,
    *,
    plan_name: str = "query",
    page_size: int = 16,
) -> QueryPlan:
    """Compile a query string into a runnable plan (sink: ``"result"``).

    ``WITH PACE`` requires at least two streams or a disordered single
    stream; it unions the FROM streams under the disorder bound and makes
    the plan a feedback producer exactly as in the paper's sketch.
    """
    parsed = _parse(query)
    plan = QueryPlan(plan_name)

    sources = []
    schema: Schema | None = None
    for stream_name in parsed.streams:
        stream_schema, timeline = catalog.lookup(stream_name)
        if schema is None:
            schema = stream_schema
        elif schema.names != stream_schema.names:
            raise PlanError(
                f"UNION streams must share a schema: {schema.names} vs "
                f"{stream_schema.names}"
            )
        source = ListSource(stream_name, stream_schema, timeline)
        plan.add(source)
        sources.append(source)

    assert schema is not None
    # Merge stage: PACE when requested, plain UNION for several streams.
    if parsed.pace is not None:
        merge = Pace(
            "pace", schema,
            timestamp_attribute=parsed.pace["attr"],
            tolerance=parsed.pace["tolerance"],
            arity=max(len(sources), 2),
            feedback_interval=parsed.pace["tolerance"] / 2.0,
        )
        plan.add(merge)
        for index, source in enumerate(sources):
            plan.connect(source, merge, port=index, page_size=page_size)
        if len(sources) == 1:
            # Single-stream PACE: the second port closes immediately.
            empty = ListSource("empty", schema, [])
            plan.add(empty)
            plan.connect(empty, merge, port=1, page_size=page_size)
        upstream = merge
    elif len(sources) > 1:
        merge = Union("union", schema, arity=len(sources))
        plan.add(merge)
        for index, source in enumerate(sources):
            plan.connect(source, merge, port=index, page_size=page_size)
        upstream = merge
    else:
        upstream = sources[0]

    if parsed.where:
        pattern_constraints: dict[str, Atom] = {}
        for attr, op, literal in parsed.where:
            pattern_constraints[attr] = _COMPARATORS[op](literal)
        keep = Select(
            "where",
            schema,
            Pattern.from_mapping(schema, pattern_constraints),
        )
        plan.add(keep)
        plan.connect(upstream, keep, page_size=page_size)
        upstream = keep

    if parsed.aggregate is not None:
        spec = parsed.aggregate
        aggregate = WindowAggregate(
            "aggregate", schema,
            kind=spec["kind"],
            window_attribute=spec["window_attr"],
            width=spec["window"],
            slide=spec["slide"],
            value_attribute=spec["attr"],
            group_by=tuple(spec["group_by"]),
        )
        plan.add(aggregate)
        plan.connect(upstream, aggregate, page_size=page_size)
        upstream = aggregate

    if parsed.projection is not None:
        project = Project(
            "project", upstream.output_schema, parsed.projection
        )
        plan.add(project)
        plan.connect(upstream, project, page_size=page_size)
        upstream = project

    sink = CollectSink("result", upstream.output_schema)
    plan.add(sink)
    plan.connect(upstream, sink, page_size=page_size)
    plan.validate()
    return plan
