"""A mini query language compiling to query plans.

Section 3.3 of the paper sketches a SQL-like surface for explicit feedback
policies::

    SELECT *
    FROM stream1 UNION stream2
    WITH PACE ON MAX(stream1.time, stream2.time) 1 MINUTE

This module implements a small language in that spirit, compiled straight
onto the operator library::

    SELECT *                                   (or a projection list)
    FROM <stream> [UNION <stream> ...]
    [WHERE <attr> <op> <literal> [AND ...]]
    [AGGREGATE <kind>(<attr>) GROUP BY <attr>[, ...]
        WINDOW <n> [SLIDE <n>] ON <attr>]
    [WITH PACE ON <attr> <n> [SECOND[S]|MINUTE[S]]]

Streams are named in a :class:`Catalog` mapping stream name to a schema
plus an arrival timeline.  ``compile_flow`` returns the fluent-API
:class:`~repro.api.flow.Flow` the query text denotes; ``compile_query``
builds it into a ready-to-run :class:`~repro.engine.plan.QueryPlan` whose
sink is named ``"result"``.  Compilation goes *through the builder* --
the declarative text, the fluent verbs, and the hand-wired plan are three
surfaces over one construction path.

The language is deliberately small — it exists to show the feedback
machinery slotting under a declarative surface (PACE clauses become
feedback-producing operators), not to be a SQL implementation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.api.aggregates import AggSpec
from repro.api.flow import Flow
from repro.engine.plan import QueryPlan
from repro.errors import PlanError
from repro.operators.aggregate import AggregateKind
from repro.punctuation.atoms import (
    AtLeast,
    AtMost,
    Atom,
    Equals,
    GreaterThan,
    LessThan,
)
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema

__all__ = ["Catalog", "compile_flow", "compile_query"]


@dataclass
class Catalog:
    """Available streams: name -> (schema, timeline)."""

    streams: dict[str, tuple[Schema, list]]

    def lookup(self, name: str) -> tuple[Schema, list]:
        try:
            return self.streams[name]
        except KeyError:
            raise PlanError(f"unknown stream {name!r}") from None


_TIME_UNITS = {
    "second": 1.0, "seconds": 1.0,
    "minute": 60.0, "minutes": 60.0,
    "hour": 3600.0, "hours": 3600.0,
}

_COMPARATORS: dict[str, type] = {
    "<=": AtMost, ">=": AtLeast, "<": LessThan, ">": GreaterThan,
    "=": Equals,
}


@dataclass
class _ParsedQuery:
    projection: list[str] | None
    streams: list[str]
    where: list[tuple[str, str, Any]]
    aggregate: dict[str, Any] | None
    pace: dict[str, Any] | None


def _parse_literal(text: str) -> Any:
    text = text.strip()
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _parse(query: str) -> _ParsedQuery:
    flat = " ".join(query.split())
    pattern = re.compile(
        r"^SELECT\s+(?P<projection>\*|[\w\s,.]+?)\s+"
        r"FROM\s+(?P<streams>[\w\s]+?)"
        r"(?:\s+WHERE\s+(?P<where>.+?))?"
        r"(?:\s+AGGREGATE\s+(?P<agg_kind>\w+)\((?P<agg_attr>\*|\w+)\)"
        r"\s+GROUP\s+BY\s+(?P<group_by>[\w\s,]+?)"
        r"\s+WINDOW\s+(?P<window>[\d.]+)"
        r"(?:\s+SLIDE\s+(?P<slide>[\d.]+))?"
        r"\s+ON\s+(?P<window_attr>\w+))?"
        r"(?:\s+WITH\s+PACE\s+ON\s+(?P<pace_attr>\w+)"
        r"\s+(?P<pace_n>[\d.]+)(?:\s+(?P<pace_unit>\w+))?)?$",
        re.IGNORECASE,
    )
    match = pattern.match(flat.strip().rstrip(";"))
    if match is None:
        raise PlanError(f"cannot parse query: {query!r}")
    groups = match.groupdict()

    projection = None
    if groups["projection"].strip() != "*":
        projection = [a.strip() for a in groups["projection"].split(",")]

    streams = [
        s.strip() for s in re.split(
            r"\s+UNION\s+", groups["streams"], flags=re.IGNORECASE
        )
    ]

    where: list[tuple[str, str, Any]] = []
    if groups["where"]:
        for clause in re.split(r"\s+AND\s+", groups["where"],
                               flags=re.IGNORECASE):
            m = re.match(
                r"^(\w+)\s*(<=|>=|<|>|=)\s*(.+)$", clause.strip()
            )
            if m is None:
                raise PlanError(f"cannot parse WHERE clause {clause!r}")
            where.append((m.group(1), m.group(2), _parse_literal(m.group(3))))

    aggregate = None
    if groups["agg_kind"]:
        kind = groups["agg_kind"].lower()
        if kind not in AggregateKind.ALL:
            raise PlanError(f"unknown aggregate {kind!r}")
        aggregate = {
            "kind": kind,
            "attr": None if groups["agg_attr"] == "*" else groups["agg_attr"],
            "group_by": [g.strip() for g in groups["group_by"].split(",")],
            "window": float(groups["window"]),
            "slide": float(groups["slide"]) if groups["slide"] else None,
            "window_attr": groups["window_attr"],
        }

    pace = None
    if groups["pace_attr"]:
        unit = (groups["pace_unit"] or "seconds").lower()
        if unit not in _TIME_UNITS:
            raise PlanError(f"unknown time unit {unit!r}")
        pace = {
            "attr": groups["pace_attr"],
            "tolerance": float(groups["pace_n"]) * _TIME_UNITS[unit],
        }
    return _ParsedQuery(projection, streams, where, aggregate, pace)


def compile_flow(
    query: str,
    catalog: Catalog,
    *,
    flow_name: str = "query",
    page_size: int = 16,
) -> Flow:
    """Compile a query string into a fluent :class:`Flow` (sink ``"result"``).

    ``WITH PACE`` requires at least two streams or a disordered single
    stream; it unions the FROM streams under the disorder bound and makes
    the plan a feedback producer exactly as in the paper's sketch.
    """
    parsed = _parse(query)
    flow = Flow(flow_name, page_size=page_size)

    handles = []
    schema: Schema | None = None
    for stream_name in parsed.streams:
        stream_schema, timeline = catalog.lookup(stream_name)
        if schema is None:
            schema = stream_schema
        elif schema.names != stream_schema.names:
            raise PlanError(
                f"UNION streams must share a schema: {schema.names} vs "
                f"{stream_schema.names}"
            )
        handles.append(flow.source(stream_schema, timeline, name=stream_name))

    assert schema is not None
    # Merge stage: PACE when requested, plain UNION for several streams.
    # (Single-stream PACE gets its empty second input from the verb.)
    if parsed.pace is not None:
        upstream = handles[0].pace(
            *handles[1:],
            on=parsed.pace["attr"],
            interval=parsed.pace["tolerance"],
            feedback_interval=parsed.pace["tolerance"] / 2.0,
            name="pace",
        )
    elif len(handles) > 1:
        upstream = handles[0].union(*handles[1:], name="union")
    else:
        upstream = handles[0]

    if parsed.where:
        pattern_constraints: dict[str, Atom] = {}
        for attr, op, literal in parsed.where:
            pattern_constraints[attr] = _COMPARATORS[op](literal)
        upstream = upstream.where(
            Pattern.from_mapping(schema, pattern_constraints), name="where"
        )

    if parsed.aggregate is not None:
        spec = parsed.aggregate
        upstream = upstream.window(
            AggSpec(spec["kind"], spec["attr"]),
            on=spec["window_attr"],
            width=spec["window"],
            slide=spec["slide"],
            by=tuple(spec["group_by"]),
            name="aggregate",
        )

    if parsed.projection is not None:
        upstream = upstream.select(*parsed.projection, name="project")

    upstream.collect("result")
    return flow


def compile_query(
    query: str,
    catalog: Catalog,
    *,
    plan_name: str = "query",
    page_size: int = 16,
) -> QueryPlan:
    """Compile a query string into a runnable plan (sink: ``"result"``)."""
    return compile_flow(
        query, catalog, flow_name=plan_name, page_size=page_size
    ).build()
