"""Pages: batched transport units between operators.

NiagaraST's inter-operator queues carry *pages* of tuples rather than single
tuples: batching amortises hand-off cost and reduces context switching
(paper section 5).  The downside -- a slow stream may take arbitrarily long
to fill a page -- is resolved exactly as in the paper: **punctuations flush
pages**.  A page is handed to the queue when it is full or when a punctuation
is appended.

Pages are also flushed by explicit ``flush()`` (end of stream) so no element
is ever stranded.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.errors import EngineError

__all__ = ["Page", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 64


class Page:
    """A bounded batch of stream elements (tuples and embedded punctuation).

    A page never contains elements appended after a punctuation: appending a
    punctuation marks the page complete, mirroring NiagaraST's flush-on-
    punctuation rule.  Appending to a complete page raises
    :class:`~repro.errors.EngineError`.
    """

    __slots__ = ("capacity", "elements", "_complete", "available_at")

    def __init__(self, capacity: int = DEFAULT_PAGE_SIZE) -> None:
        if capacity < 1:
            raise EngineError(f"page capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.elements: List[Any] = []
        self._complete = False
        #: Virtual time at which the page became visible downstream.
        #: Stamped by the engine when the producer flushes it; None until
        #: then.  Consumers never start a page before this time.
        self.available_at: float | None = None

    def append(self, element: Any) -> bool:
        """Append one element; return True when the page became complete.

        The page completes when it reaches capacity or when ``element`` is a
        punctuation (``element.is_punctuation`` is truthy).
        """
        if self._complete:
            raise EngineError("cannot append to a complete page")
        self.elements.append(element)
        if element.is_punctuation or len(self.elements) >= self.capacity:
            self._complete = True
        return self._complete

    def take_from(self, elements: List[Any], start: int) -> int:
        """Bulk-append data tuples from ``elements[start:]`` until full.

        Returns the index of the first element *not* taken.  Callers must
        pass plain data tuples only -- punctuation completes a page and
        must go through :meth:`append` so the flush-on-punctuation rule
        holds.
        """
        if self._complete:
            raise EngineError("cannot append to a complete page")
        room = self.capacity - len(self.elements)
        chunk = elements[start:start + room]
        self.elements.extend(chunk)
        if len(self.elements) >= self.capacity:
            self._complete = True
        return start + len(chunk)

    @property
    def complete(self) -> bool:
        return self._complete

    @property
    def empty(self) -> bool:
        return not self.elements

    def seal(self) -> None:
        """Mark the page complete regardless of fill level (explicit flush)."""
        self._complete = True

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.elements)

    def tuple_count(self) -> int:
        """Number of data tuples (excluding punctuations) on the page."""
        return sum(1 for e in self.elements if not e.is_punctuation)

    def punctuation_count(self) -> int:
        """Number of embedded punctuations on the page."""
        return sum(1 for e in self.elements if e.is_punctuation)

    def __repr__(self) -> str:
        state = "complete" if self._complete else "open"
        return (
            f"Page({len(self.elements)}/{self.capacity} elements, "
            f"{self.punctuation_count()} puncts, {state})"
        )
