"""Pages: batched transport units between operators.

NiagaraST's inter-operator queues carry *pages* of tuples rather than single
tuples: batching amortises hand-off cost and reduces context switching
(paper section 5).  The downside -- a slow stream may take arbitrarily long
to fill a page -- is resolved exactly as in the paper: **punctuations flush
pages**.  A page is handed to the queue when it is full or when a punctuation
is appended.

Pages are also flushed by explicit ``flush()`` (end of stream) so no element
is ever stranded.

**Columnar serialization.**  Inside one process a page travels by
reference -- that *is* the zero-copy fast path every engine uses.  At a
process boundary (the multiprocess engine), a page is re-encoded once into
a compact columnar form: a **schema table** describing each distinct
schema exactly once, plus **segments** that are either a run of same-schema
tuples stored as value *columns* (one tuple-of-values per attribute) or a
single interleaved punctuation.  Encoding a page therefore costs one
schema description plus one transpose, instead of pickling a schema-bound
object per tuple; decoding interns schemas per process so every
reconstructed tuple of a signature shares one :class:`~repro.stream.
schema.Schema` instance.  ``available_at`` and completion survive the
round trip, so flush-on-punctuation holds across the boundary.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.errors import EngineError

__all__ = ["Page", "DEFAULT_PAGE_SIZE", "encode_page", "decode_page"]

DEFAULT_PAGE_SIZE = 64

#: Format tag of the columnar encoding; bump on layout changes so a
#: mixed-version worker fleet fails loudly instead of misdecoding.
_CODEC_VERSION = "colpage/1"


class Page:
    """A bounded batch of stream elements (tuples and embedded punctuation).

    A page never contains elements appended after a punctuation: appending a
    punctuation marks the page complete, mirroring NiagaraST's flush-on-
    punctuation rule.  Appending to a complete page raises
    :class:`~repro.errors.EngineError`.
    """

    __slots__ = ("capacity", "elements", "_complete", "available_at")

    def __init__(self, capacity: int = DEFAULT_PAGE_SIZE) -> None:
        if capacity < 1:
            raise EngineError(f"page capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.elements: List[Any] = []
        self._complete = False
        #: Virtual time at which the page became visible downstream.
        #: Stamped by the engine when the producer flushes it; None until
        #: then.  Consumers never start a page before this time.
        self.available_at: float | None = None

    def append(self, element: Any) -> bool:
        """Append one element; return True when the page became complete.

        The page completes when it reaches capacity or when ``element`` is a
        punctuation (``element.is_punctuation`` is truthy).
        """
        if self._complete:
            raise EngineError("cannot append to a complete page")
        self.elements.append(element)
        if element.is_punctuation or len(self.elements) >= self.capacity:
            self._complete = True
        return self._complete

    def take_from(self, elements: List[Any], start: int) -> int:
        """Bulk-append data tuples from ``elements[start:]`` until full.

        Returns the index of the first element *not* taken.  Callers must
        pass plain data tuples only -- punctuation completes a page and
        must go through :meth:`append` so the flush-on-punctuation rule
        holds.
        """
        if self._complete:
            raise EngineError("cannot append to a complete page")
        room = self.capacity - len(self.elements)
        chunk = elements[start:start + room]
        self.elements.extend(chunk)
        if len(self.elements) >= self.capacity:
            self._complete = True
        return start + len(chunk)

    @property
    def complete(self) -> bool:
        return self._complete

    @property
    def empty(self) -> bool:
        return not self.elements

    def seal(self) -> None:
        """Mark the page complete regardless of fill level (explicit flush)."""
        self._complete = True

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.elements)

    def tuple_count(self) -> int:
        """Number of data tuples (excluding punctuations) on the page."""
        return sum(1 for e in self.elements if not e.is_punctuation)

    def punctuation_count(self) -> int:
        """Number of embedded punctuations on the page."""
        return sum(1 for e in self.elements if e.is_punctuation)

    # -- columnar serialization ----------------------------------------------

    def encode(self) -> tuple:
        """Columnar wire form of this page (see :func:`encode_page`)."""
        return encode_page(self)

    @classmethod
    def decode(cls, encoded: tuple) -> "Page":
        """Rebuild a page from its columnar wire form (:func:`decode_page`)."""
        return decode_page(encoded)

    def __repr__(self) -> str:
        state = "complete" if self._complete else "open"
        return (
            f"Page({len(self.elements)}/{self.capacity} elements, "
            f"{self.punctuation_count()} puncts, {state})"
        )


def _schema_signature(schema: Any) -> tuple:
    """Structural identity of a schema: ``(name, kind, progressing)`` rows."""
    return tuple((a.name, a.kind, a.progressing) for a in schema)


#: Per-process intern table: schema signature -> the one Schema instance
#: every decoded tuple of that signature shares.  Decoding N pages of one
#: stream therefore rebuilds the schema once, not once per page.
_schema_intern: dict[tuple, Any] = {}


def _intern_schema(signature: tuple) -> Any:
    schema = _schema_intern.get(signature)
    if schema is None:
        from repro.stream.schema import Schema

        schema = Schema(signature)
        _schema_intern[signature] = schema
    return schema


def encode_page(page: Page) -> tuple:
    """Encode ``page`` into a compact, pickle-friendly columnar structure.

    The result is built from tuples/lists of primitives (plus embedded
    punctuation objects, which carry their own explicit pickle support):

    ``(version, capacity, available_at, complete, schema_table, segments)``

    * ``schema_table`` -- one ``(name, kind, progressing)`` row list per
      distinct tuple schema on the page, in first-appearance order;
    * ``segments`` -- ``("t", schema_index, row_count, columns)`` for a
      run of same-schema tuples transposed into per-attribute value
      columns, or ``("p", punctuation)`` for one interleaved punctuation.

    The page's tuple/punctuation interleaving, ``available_at`` stamp and
    completion state are preserved exactly, so flush-on-punctuation
    survives the process boundary.
    """
    schema_table: list[tuple] = []
    schema_index: dict[int, int] = {}  # id(schema) -> table position
    segments: list[tuple] = []
    run_schema: Any = None
    run_rows: list[tuple] = []

    def close_run() -> None:
        nonlocal run_schema
        if run_rows:
            index = schema_index.get(id(run_schema))
            if index is None:
                index = len(schema_table)
                schema_index[id(run_schema)] = index
                schema_table.append(_schema_signature(run_schema))
            columns = tuple(zip(*run_rows))
            segments.append(("t", index, len(run_rows), columns))
            run_rows.clear()
        run_schema = None

    for element in page.elements:
        if element.is_punctuation:
            close_run()
            segments.append(("p", element))
            continue
        schema = element.schema
        if schema is not run_schema:
            close_run()
            run_schema = schema
        run_rows.append(element.values)
    close_run()
    return (
        _CODEC_VERSION,
        page.capacity,
        page.available_at,
        page._complete,
        tuple(schema_table),
        tuple(segments),
    )


def decode_page(encoded: tuple) -> Page:
    """Rebuild a :class:`Page` from :func:`encode_page`'s wire form.

    Schemas are interned per process: all tuples decoded anywhere in this
    process that share a signature share one ``Schema`` instance.
    """
    from repro.stream.tuples import StreamTuple

    version, capacity, available_at, complete, schema_table, segments = encoded
    if version != _CODEC_VERSION:
        raise EngineError(
            f"cannot decode page: codec {version!r}, expected "
            f"{_CODEC_VERSION!r}"
        )
    page = Page(capacity)
    elements = page.elements
    unchecked = StreamTuple.unchecked
    for segment in segments:
        kind = segment[0]
        if kind == "t":
            _, index, count, columns = segment
            schema = _intern_schema(schema_table[index])
            rows = list(zip(*columns)) if columns else [()] * count
            if len(rows) != count:
                raise EngineError(
                    f"corrupt page segment: {count} rows declared, "
                    f"{len(rows)} decoded"
                )
            elements.extend(unchecked(schema, row) for row in rows)
        elif kind == "p":
            elements.append(segment[1])
        else:
            raise EngineError(f"unknown page segment kind {kind!r}")
    page._complete = bool(complete)
    page.available_at = available_at
    return page
