"""Out-of-band control channel between operators.

NiagaraST pairs every data queue with a control channel that carries
messages in *both* directions (paper Figure 3):

* downstream (with the data flow): ``END_OF_STREAM``, ``SHUTDOWN``;
* upstream (against the data flow): ``FEEDBACK`` (the paper's contribution),
  ``FLOW_CONTROL`` (runtime-generated pause/resume backpressure over the
  same channel), ``SHUTDOWN`` and -- for Example 4's on-demand result
  production -- ``RESULT_REQUEST``.

Control messages are out-of-band and high priority: engines always deliver
pending control before pending data pages.  Feedback punctuation is *not*
part of the stream (paper section 3.2); it travels here, serialised as the
message payload.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ControlMessageKind",
    "Direction",
    "ControlMessage",
    "ControlChannel",
]

_message_counter = itertools.count()


class Direction(enum.Enum):
    """Which way a control message travels relative to the data flow."""

    UPSTREAM = "upstream"      # against the data flow (feedback, shutdown)
    DOWNSTREAM = "downstream"  # with the data flow (end-of-stream, shutdown)


class ControlMessageKind(enum.Enum):
    """The kinds of control message the runtime understands."""

    FEEDBACK = "feedback"              # upstream; payload: FeedbackPunctuation
    FLOW_CONTROL = "flow_control"      # upstream; payload: FlowControlPunctuation
    RESULT_REQUEST = "result_request"  # upstream; payload: optional pattern
    CHECKPOINT = "checkpoint"          # upstream; payload: CheckpointPunctuation
    REBALANCE = "rebalance"            # either direction; payload: RebalanceCommand
                                       # (downstream: controller -> partition) or
                                       # RebalanceRecord ack (upstream: merge -> partition)
    END_OF_STREAM = "end_of_stream"    # downstream; payload: None
    SHUTDOWN = "shutdown"              # either direction; payload: reason str


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """A single out-of-band message.

    ``sender`` is the name of the issuing operator, recorded for diagnostics
    and for the feedback-provenance log used by the experiments.  ``seq`` is
    a global sequence number that gives control messages a stable total
    order (engines use it to break timestamp ties deterministically).
    """

    kind: ControlMessageKind
    direction: Direction
    payload: Any = None
    sender: str = ""
    #: Virtual time the sender issued the message.  The engines deliver it
    #: no earlier than ``sent_at`` plus the configured control latency.
    sent_at: float = 0.0
    seq: int = field(default_factory=lambda: next(_message_counter))

    def __repr__(self) -> str:
        return (
            f"ControlMessage({self.kind.value}, {self.direction.value}, "
            f"from={self.sender!r}, payload={self.payload!r})"
        )


class ControlChannel:
    """The control half of an inter-operator connection.

    One channel accompanies each data queue.  The *producer* end of the data
    queue reads the upstream side; the *consumer* end reads the downstream
    side.  Like :class:`~repro.stream.queues.DataQueue` this structure is
    single-threaded; the threaded runtime adds locking.
    """

    __slots__ = ("name", "_upstream", "_downstream",
                 "upstream_sent", "downstream_sent")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._upstream: deque[ControlMessage] = deque()
        self._downstream: deque[ControlMessage] = deque()
        self.upstream_sent = 0
        self.downstream_sent = 0

    def send(self, message: ControlMessage) -> None:
        """Enqueue ``message`` on the side given by its direction."""
        if message.direction is Direction.UPSTREAM:
            self._upstream.append(message)
            self.upstream_sent += 1
        else:
            self._downstream.append(message)
            self.downstream_sent += 1

    def receive_upstream(self) -> ControlMessage | None:
        """Next message travelling upstream (read by the data producer)."""
        if self._upstream:
            return self._upstream.popleft()
        return None

    def receive_downstream(self) -> ControlMessage | None:
        """Next message travelling downstream (read by the data consumer)."""
        if self._downstream:
            return self._downstream.popleft()
        return None

    def peek_upstream(self) -> ControlMessage | None:
        """Head of the upstream side without removing it."""
        return self._upstream[0] if self._upstream else None

    def peek_downstream(self) -> ControlMessage | None:
        """Head of the downstream side without removing it."""
        return self._downstream[0] if self._downstream else None

    @property
    def pending_upstream(self) -> int:
        return len(self._upstream)

    @property
    def pending_downstream(self) -> int:
        return len(self._downstream)

    def __repr__(self) -> str:
        return (
            f"ControlChannel({self.name!r}, up={len(self._upstream)}, "
            f"down={len(self._downstream)})"
        )
