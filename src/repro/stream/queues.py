"""Inter-operator data queues, optionally bounded by watermarks.

A :class:`DataQueue` connects a producer operator to a consumer operator and
carries complete :class:`~repro.stream.pages.Page` objects.  The producer
writes single elements; the queue maintains the producer's *open page* and
moves it into the ready backlog when it completes (full, punctuation, or
explicit flush).

Queues are unbounded by default -- exactly the paper's NiagaraST setting,
where inter-operator queues absorb whatever the producers emit.  Passing
``capacity`` turns on occupancy accounting for backpressure: the queue
tracks how many elements it buffers (ready pages plus the open page) and
exposes a **high-water mark** (``capacity``) and a **low-water mark**
(default ``capacity // 2``).  The queue itself never blocks or signals --
it is pure bookkeeping; the runtime (:mod:`repro.engine.runtime`) watches
the marks and steers the producer through *pause*/*resume* feedback
punctuation on the control channel (the first runtime-generated use of the
paper's feedback mechanism; see ``docs/backpressure.md``).

This class is single-threaded by default: the deterministic simulator
drives all operators from one loop.  The threaded runtime
(:mod:`repro.engine.threaded`) calls :meth:`DataQueue.enable_thread_safety`
on every queue before starting threads -- producers then emit whole pages
*outside* the engine's plan lock (that is what lets shard replicas run
concurrently), so the producer/consumer critical sections here are guarded
by a per-queue mutex instead.

Concurrent engines additionally :meth:`attach_waiter` a wake-up primitive
(the :class:`~repro.stream.waiters.Waiter` seam): whenever a page becomes
ready -- or the queue closes -- the queue notifies the waiter itself, so
"new data wakes the consumer" is one code path shared by the threaded
runtime (``threading.Condition``) and the asyncio engine
(``asyncio.Condition``) instead of per-engine wake-up plumbing.  The
notification always fires *after* the per-queue mutex is released, so a
waiter that takes the engine lock can never deadlock against a consumer
holding that lock while popping pages.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterator

from repro.errors import EngineError
from repro.stream.pages import DEFAULT_PAGE_SIZE, Page
from repro.stream.waiters import Waiter

__all__ = ["DataQueue"]


class DataQueue:
    """FIFO of complete pages with a producer-side open page.

    ``name`` identifies the edge for diagnostics (``"select->average"``).

    ``capacity`` (elements) is the high-water mark for backpressure;
    ``low_water`` (default ``capacity // 2``) is the relief mark.  With
    ``capacity=None`` (the default) the queue is unbounded and behaves
    exactly as before watermarks existed.
    """

    __slots__ = ("name", "page_size", "capacity", "low_water",
                 "pressure_signalled", "peak_occupancy", "_occupancy",
                 "_open_page", "_ready", "_closed", "_mutex", "_waiter",
                 "pages_flushed", "elements_enqueued")

    def __init__(
        self,
        name: str = "",
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        capacity: int | None = None,
        low_water: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise EngineError(
                f"{name or 'queue'}: capacity must be >= 1, got {capacity}"
            )
        if low_water is None:
            low_water = 0 if capacity is None else capacity // 2
        elif capacity is None:
            raise EngineError(
                f"{name or 'queue'}: low_water requires a capacity"
            )
        elif not 0 <= low_water < capacity:
            raise EngineError(
                f"{name or 'queue'}: low_water must satisfy "
                f"0 <= low_water < capacity, got {low_water} "
                f"(capacity {capacity})"
            )
        self.name = name
        self.page_size = page_size
        self.capacity = capacity
        self.low_water = low_water
        #: True between the consumer signalling *pause* (occupancy crossed
        #: the high-water mark) and *resume* (drained to the low-water
        #: mark).  Maintained by the runtime, never by the queue.
        self.pressure_signalled = False
        self.peak_occupancy = 0
        self._occupancy = 0
        self._open_page = Page(page_size)
        self._ready: deque[Page] = deque()
        self._closed = False
        #: Optional per-queue mutex (threaded runtime only); None keeps
        #: the single-threaded fast path completely lock-free.
        self._mutex: threading.Lock | None = None
        #: Optional wake-up primitive (concurrent engines); notified --
        #: outside the mutex -- when a page becomes ready or the queue
        #: closes, so consumers sleeping on the engine's condition wake.
        self._waiter: Waiter | None = None
        self.pages_flushed = 0
        self.elements_enqueued = 0

    def enable_thread_safety(self) -> None:
        """Guard producer/consumer critical sections with a mutex.

        Called by the threaded runtime before any operator thread starts:
        the producer appends elements outside the engine's plan lock while
        the consumer pops ready pages, so the open-page/backlog hand-off
        must be serialised here.
        """
        if self._mutex is None:
            self._mutex = threading.Lock()

    def attach_waiter(self, waiter: Waiter | None) -> None:
        """Install the engine's wake-up primitive (the waiter seam).

        Concurrent engines attach their condition adapter
        (:class:`~repro.stream.waiters.ThreadConditionWaiter` or
        :class:`~repro.stream.waiters.AsyncioConditionWaiter`) before the
        run starts; the queue then announces page-ready and close events
        itself, one shared code path for both primitives.
        """
        self._waiter = waiter

    # -- producer side -----------------------------------------------------------

    def put(self, element: Any) -> bool:
        """Enqueue one element; return True when a page became ready.

        Punctuations complete the open page immediately (flush-on-
        punctuation), so downstream operators observe stream progress
        without waiting for a full page.
        """
        if self._mutex is not None:
            with self._mutex:
                completed = self._put(element)
        else:
            completed = self._put(element)
        if completed and self._waiter is not None:
            self._waiter.notify_all()
        return completed

    def _put(self, element: Any) -> bool:
        self.elements_enqueued += 1
        self._occupancy += 1
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy
        completed = self._open_page.append(element)
        if completed:
            self._ready.append(self._open_page)
            self._open_page = Page(self.page_size)
            self.pages_flushed += 1
        return completed

    def put_many(self, elements: list) -> int:
        """Enqueue a batch of data tuples; return the pages completed.

        The bulk counterpart of :meth:`put` for the page-batched operator
        path: elements are copied into the open page in slices instead of
        one append call each.  Punctuation must still go through
        :meth:`put` (it completes the open page); callers hand this method
        runs of plain tuples between punctuations.
        """
        if self._mutex is not None:
            with self._mutex:
                completed = self._put_many(elements)
        else:
            completed = self._put_many(elements)
        if completed and self._waiter is not None:
            self._waiter.notify_all()
        return completed

    def _put_many(self, elements: list) -> int:
        total = len(elements)
        self.elements_enqueued += total
        self._occupancy += total
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy
        completed = 0
        index = 0
        while index < total:
            index = self._open_page.take_from(elements, index)
            if self._open_page.complete:
                self._ready.append(self._open_page)
                self._open_page = Page(self.page_size)
                self.pages_flushed += 1
                completed += 1
        return completed

    def put_page(self, page: Page) -> None:
        """Inject one complete page directly into the ready backlog.

        The receiving end of a process boundary: the multiprocess
        engine's receiver thread decodes a columnar page (see
        :func:`~repro.stream.pages.decode_page`) and lands it here as-is
        -- bypassing the open page, preserving the producer-side batch
        boundaries (and thus flush-on-punctuation) exactly.  Occupancy
        and counters account the page like locally produced ones, so
        watermark backpressure sees injected traffic too.
        """
        if not page.complete:
            raise EngineError(
                f"{self.name or 'queue'}: only complete pages may be "
                f"injected"
            )
        if self._mutex is not None:
            with self._mutex:
                self._put_page(page)
        else:
            self._put_page(page)
        if self._waiter is not None:
            self._waiter.notify_all()

    def _put_page(self, page: Page) -> None:
        count = len(page)
        self.elements_enqueued += count
        self._occupancy += count
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy
        self._ready.append(page)
        self.pages_flushed += 1

    def flush(self) -> bool:
        """Seal and enqueue the open page if it holds anything."""
        if self._mutex is not None:
            with self._mutex:
                flushed = self._flush()
        else:
            flushed = self._flush()
        if flushed and self._waiter is not None:
            self._waiter.notify_all()
        return flushed

    def _flush(self) -> bool:
        if self._open_page.empty:
            return False
        self._open_page.seal()
        self._ready.append(self._open_page)
        self._open_page = Page(self.page_size)
        self.pages_flushed += 1
        return True

    def close(self) -> None:
        """Flush any residue and mark the queue closed (end of stream)."""
        self.flush()
        self._closed = True
        if self._waiter is not None:
            self._waiter.notify_all()  # consumers must observe exhaustion

    def resize(self, capacity: int, low_water: int | None = None) -> None:
        """Re-set the watermarks of a bounded queue at runtime.

        The adaptive-watermark half of elasticity: the controller tracks
        each queue's drain rate and re-sizes its capacity to match.  Only
        bounded queues may resize (backpressure wiring is decided at
        build time), and the constructor's watermark invariants hold for
        the new values.  ``low_water`` defaults to ``capacity // 2``,
        mirroring construction.  Occupancy is untouched -- a shrink below
        the current backlog simply reads as over-high-water, and the
        runtime's usual pause/resume cycle drains it.
        """
        if self.capacity is None:
            raise EngineError(
                f"{self.name or 'queue'}: cannot resize an unbounded queue"
            )
        if capacity < 1:
            raise EngineError(
                f"{self.name or 'queue'}: capacity must be >= 1, "
                f"got {capacity}"
            )
        if low_water is None:
            low_water = capacity // 2
        elif not 0 <= low_water < capacity:
            raise EngineError(
                f"{self.name or 'queue'}: low_water must satisfy "
                f"0 <= low_water < capacity, got {low_water} "
                f"(capacity {capacity})"
            )
        if self._mutex is not None:
            with self._mutex:
                self.capacity = capacity
                self.low_water = low_water
        else:
            self.capacity = capacity
            self.low_water = low_water

    # -- consumer side ---------------------------------------------------------

    def get_page(self) -> Page | None:
        """Pop the oldest ready page, or None when nothing is ready."""
        if self._mutex is not None:
            with self._mutex:
                return self._get_page()
        return self._get_page()

    def _get_page(self) -> Page | None:
        if self._ready:
            page = self._ready.popleft()
            self._occupancy -= len(page)
            return page
        return None

    def peek_page(self) -> Page | None:
        """The oldest ready page without removing it."""
        if self._ready:
            return self._ready[0]
        return None

    def stamp_ready(self, at: float) -> bool:
        """Stamp availability on freshly flushed pages; True if any.

        Engines call this right after a producer processed an element, with
        the producer's virtual completion time; newly flushed pages (those
        without a stamp) become visible downstream at that time.
        """
        stamped = False
        for page in reversed(self._ready):
            if page.available_at is not None:
                break
            page.available_at = at
            stamped = True
        return stamped

    def drain_elements(self) -> Iterator[Any]:
        """Yield every element from every ready page (testing convenience)."""
        while (page := self.get_page()) is not None:
            yield from page

    # -- inspection ----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def ready_pages(self) -> int:
        return len(self._ready)

    def pending_elements(self) -> int:
        """Elements buffered in ready pages plus the open page."""
        return self._occupancy

    @property
    def occupancy(self) -> int:
        """Current buffered elements (ready pages + open page), O(1)."""
        return self._occupancy

    @property
    def bounded(self) -> bool:
        """True when a capacity (high-water mark) is configured."""
        return self.capacity is not None

    @property
    def above_high_water(self) -> bool:
        """True when occupancy has reached/passed the high-water mark."""
        return self.capacity is not None and self._occupancy >= self.capacity

    @property
    def below_low_water(self) -> bool:
        """True when occupancy has drained to the low-water mark."""
        return self._occupancy <= self.low_water

    @property
    def exhausted(self) -> bool:
        """True when closed and fully drained."""
        return self._closed and not self._ready and self._open_page.empty

    def __repr__(self) -> str:
        bound = (
            f", capacity={self.capacity}" if self.capacity is not None else ""
        )
        return (
            f"DataQueue({self.name!r}, ready={len(self._ready)} pages, "
            f"open={len(self._open_page)}, closed={self._closed}{bound})"
        )
