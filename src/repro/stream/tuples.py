"""Stream tuples: the data elements that flow through query plans.

A :class:`StreamTuple` is an immutable record bound to a
:class:`~repro.stream.schema.Schema`.  Operators resolve attribute names to
positions once at wiring time and then use positional access (``tup[i]``),
which keeps the per-tuple cost low on large workloads.

Stream elements are either tuples or punctuations; both expose an
``is_punctuation`` flag so pages and queues can dispatch without importing
the punctuation package (which would create an import cycle).  This mixed
stream -- data interleaved with assertions about the data (paper section
3.1) -- is what lets punctuation flush pages and unblock operators.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.stream.schema import Schema

__all__ = ["StreamTuple"]


class StreamTuple:
    """An immutable, schema-bound record.

    Instances compare equal when their values and schema attribute names
    match, and are hashable, so they can populate sets for the
    correct-exploitation checks of paper Definition 1
    (``SR - subset(SR, f) <= S <= SR`` as set containment).
    """

    __slots__ = ("values", "schema")

    is_punctuation = False

    def __init__(self, schema: Schema, values: Sequence[Any]) -> None:
        schema.check_arity(values)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", tuple(values))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("StreamTuple is immutable")

    # Immutability blocks the default slot-state unpickling (it applies
    # state via ``setattr``), so restore the slots explicitly.  Tuples
    # normally cross process boundaries in columnar-page form (see
    # :mod:`repro.stream.pages`); this covers the stragglers riding
    # inside pickled control payloads and test fixtures.
    def __getstate__(self) -> tuple:
        return (self.schema, self.values)

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "schema", state[0])
        object.__setattr__(self, "values", state[1])

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_mapping(cls, schema: Schema, mapping: Mapping[str, Any]) -> "StreamTuple":
        """Build a tuple from a name->value mapping (must cover the schema)."""
        try:
            values = [mapping[a.name] for a in schema]
        except KeyError as exc:
            raise SchemaError(f"missing value for attribute {exc.args[0]!r}") from None
        return cls(schema, values)

    @classmethod
    def unchecked(cls, schema: Schema, values: tuple) -> "StreamTuple":
        """Trusted fast path: bind pre-validated ``values`` to ``schema``.

        Skips the arity check and the defensive copy of ``__init__``;
        ``values`` must already be a tuple of the right arity.  Used by
        the columnar page decoder, which materialises whole columns at
        once and has already proven the arity against the page's schema
        table.
        """
        tup = object.__new__(cls)
        object.__setattr__(tup, "schema", schema)
        object.__setattr__(tup, "values", values)
        return tup

    # -- access ------------------------------------------------------------------

    def __getitem__(self, key: int | str) -> Any:
        if isinstance(key, str):
            return self.values[self.schema.index_of(key)]
        return self.values[key]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of attribute ``name``, or ``default`` when absent."""
        if name in self.schema:
            return self.values[self.schema.index_of(name)]
        return default

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> dict[str, Any]:
        """Name -> value view (fresh dict; the tuple itself stays immutable)."""
        return dict(zip(self.schema.names, self.values))

    # -- derivation ----------------------------------------------------------------

    def project(self, names: Sequence[str], schema: Schema | None = None) -> "StreamTuple":
        """A new tuple holding only ``names``, bound to ``schema`` if given."""
        target = schema if schema is not None else self.schema.project(names)
        return StreamTuple(target, [self[n] for n in names])

    def replace(self, **updates: Any) -> "StreamTuple":
        """A copy with the named attributes replaced."""
        values = list(self.values)
        for name, value in updates.items():
            values[self.schema.index_of(name)] = value
        return StreamTuple(self.schema, values)

    def rebind(self, schema: Schema) -> "StreamTuple":
        """The same values bound to a different (same-arity) schema."""
        return StreamTuple(schema, self.values)

    def concat(self, other: "StreamTuple", schema: Schema) -> "StreamTuple":
        """Concatenate two tuples under a pre-computed output schema."""
        return StreamTuple(schema, self.values + other.values)

    # -- identity --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return self.values == other.values and self.schema.names == other.schema.names

    def __hash__(self) -> int:
        return hash((self.schema.names, self.values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self.schema.names, self.values))
        return f"<{inner}>"
