"""Waiter protocol: the one wake-up seam shared by concurrent engines.

The threaded runtime and the asyncio engine are both *notification-driven*
(paper section 5: "each operator has an object that it sleeps on when it
has no work to do.  An operator is awakened when a new data page or
control message is sent to it").  The primitive underneath differs --
``threading.Condition`` for preemptive threads, ``asyncio.Condition`` for
cooperative coroutines -- but the protocol the runtime needs is the same
and small:

* ``notify_all()`` -- callable *synchronously* from anywhere inside the
  engine (operator callbacks, queue hand-offs, scheduled actions), waking
  every sleeping worker so it can re-scan for work;
* a wait primitive the engine's workers park on, optionally bounded by a
  deadline (the arrival time of an in-flight ``control_latency`` message).

This module is that seam.  :class:`ThreadConditionWaiter` and
:class:`AsyncioConditionWaiter` adapt the two stdlib conditions to one
interface, so the wake-up half of an engine policy
(:class:`~repro.engine.notify.NotificationPolicy`) and the page-ready
hand-off in :class:`~repro.stream.queues.DataQueue` are written exactly
once instead of per engine.  ``DataQueue.attach_waiter`` is the
queue-side hook: a queue with a waiter announces "a page became ready /
the stream closed" itself, on whichever primitive the running engine
uses.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Protocol, runtime_checkable

__all__ = [
    "AsyncioConditionWaiter",
    "ThreadConditionWaiter",
    "Waiter",
]


@runtime_checkable
class Waiter(Protocol):
    """What the shared runtime code needs from a wake-up primitive."""

    def notify_all(self) -> None:
        """Wake every sleeping worker (callable from synchronous code)."""
        ...


class ThreadConditionWaiter:
    """Adapter over ``threading.Condition`` for the threaded runtime.

    ``notify_all`` acquires the condition's (re-entrant) lock itself, so
    it is safe both from a worker thread that already holds the engine
    lock and from one that does not (a producer emitting pages outside
    the plan lock).  ``wait`` must be called with the lock held -- the
    engine's worker loop already runs under it.
    """

    __slots__ = ("condition",)

    def __init__(self, condition: threading.Condition | None = None) -> None:
        self.condition = (
            condition if condition is not None
            else threading.Condition(threading.RLock())
        )

    def notify_all(self) -> None:
        with self.condition:
            self.condition.notify_all()

    def wait(self, timeout: float | None = None) -> None:
        """Park the calling thread (lock held) until notified."""
        self.condition.wait(timeout)

    def __repr__(self) -> str:
        return "ThreadConditionWaiter()"


class AsyncioConditionWaiter:
    """Adapter over ``asyncio.Condition`` for the asyncio engine.

    The engine's coroutines run their synchronous sections while holding
    the condition's lock (cooperative scheduling makes that free: only
    one coroutine executes at a time anyway), so ``notify_all`` called
    from inside an operator callback finds the lock held by the running
    task and notifies directly -- no polling, exactly mirroring the
    threaded runtime's discipline.

    Because no coroutine is ever *suspended* while holding the lock (the
    only awaits under it are ``Condition.wait`` -- which releases it --
    and explicit release/re-acquire around cost-emulation sleeps), a
    held lock always belongs to the currently running task.  The rare
    caller outside that discipline (client code poking the plan from the
    loop) falls back to a scheduled notify task, so wake-ups are never
    dropped.
    """

    __slots__ = ("condition", "_pending_notifies")

    def __init__(self) -> None:
        # Binding to the running loop happens lazily on first await
        # (Python >= 3.10), so the waiter may be built before the loop.
        self.condition = asyncio.Condition()
        #: Strong references to fall-back notify tasks: the loop keeps
        #: only weak ones, and a collected task would drop the wake-up.
        self._pending_notifies: set[asyncio.Task] = set()

    def notify_all(self) -> None:
        condition = self.condition
        if condition.locked():
            # Single-threaded loop + the no-await-while-locked discipline
            # above: a held lock is held by the running task, i.e. us.
            condition.notify_all()
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # no loop running -> nobody can be waiting
        task = loop.create_task(self._locked_notify())
        self._pending_notifies.add(task)
        task.add_done_callback(self._pending_notifies.discard)

    async def _locked_notify(self) -> None:
        async with self.condition:
            self.condition.notify_all()

    async def wait(self, timeout: float | None = None) -> None:
        """Park the calling coroutine (lock held) until notified.

        On timeout the condition's lock is re-acquired before returning,
        so callers hold it again either way -- the same contract as
        ``threading.Condition.wait(timeout)``.
        """
        if timeout is None:
            await self.condition.wait()
            return
        try:
            await asyncio.wait_for(self.condition.wait(), timeout)
        except asyncio.TimeoutError:
            pass  # deadline waits time out routinely; lock is re-held

    def __repr__(self) -> str:
        return "AsyncioConditionWaiter()"
