"""Schemas and attributes for stream tuples.

A :class:`Schema` is an ordered sequence of named, optionally typed
attributes.  Schemas are immutable and hashable; operators resolve attribute
names to positions once, at plan-wiring time, and afterwards use positional
access on tuples for speed.

Schemas also carry the machinery needed by feedback propagation
(paper section 4.2): :class:`SchemaMapping` records, for each output
attribute of an operator, which input (by index) and which input attribute it
derives from.  The safe-propagation planner in :mod:`repro.core.propagation`
consumes these mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError

__all__ = ["Attribute", "Schema", "SchemaMapping", "AttributeOrigin"]


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single named attribute of a schema.

    ``kind`` is an informal type tag (``"int"``, ``"float"``, ``"str"``,
    ``"timestamp"``, or ``"any"``).  The library does not enforce value types
    at runtime -- the tag documents intent and lets workload generators and
    the punctuation mini-language pick sensible literals.

    ``progressing`` marks attributes that advance monotonically with stream
    progress (typically timestamps or window identifiers).  Progressing
    attributes are the natural carriers of embedded punctuation and therefore
    the "delimited" attributes on which feedback is supportable
    (paper section 4.4).
    """

    name: str
    kind: str = "any"
    progressing: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if "." in self.name.split(".")[-1] and self.name.count(".") > 1:
            raise SchemaError(f"attribute name {self.name!r} has nested dots")

    @property
    def base_name(self) -> str:
        """Name without any stream qualifier (``probe.speed`` -> ``speed``)."""
        return self.name.rsplit(".", 1)[-1]

    def qualified(self, prefix: str) -> "Attribute":
        """Return a copy qualified as ``prefix.base_name``."""
        return Attribute(f"{prefix}.{self.base_name}", self.kind, self.progressing)


class Schema:
    """An immutable, ordered collection of :class:`Attribute` objects.

    Supports name lookup, projection, concatenation (for joins) and
    qualification.  Equality and hashing consider attribute names and kinds,
    which lets schemas serve as dictionary keys in operator registries.
    """

    __slots__ = ("_attributes", "_index", "_hash")

    def __init__(self, attributes: Iterable[Attribute | tuple | str]) -> None:
        attrs: list[Attribute] = []
        for spec in attributes:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            elif isinstance(spec, tuple):
                attrs.append(Attribute(*spec))
            elif isinstance(spec, str):
                attrs.append(Attribute(spec))
            else:
                raise SchemaError(f"cannot build attribute from {spec!r}")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._index: dict[str, int] = {a.name: i for i, a in enumerate(attrs)}
        # Also index by unqualified base name when unambiguous, so that a
        # pattern written against ``speed`` still resolves on a schema whose
        # attribute is ``probe.speed``.
        base_counts: dict[str, int] = {}
        for a in attrs:
            base_counts[a.base_name] = base_counts.get(a.base_name, 0) + 1
        for i, a in enumerate(attrs):
            if a.base_name not in self._index and base_counts[a.base_name] == 1:
                self._index[a.base_name] = i
        self._hash = hash(tuple((a.name, a.kind) for a in attrs))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Build a schema of untyped attributes from bare names."""
        return cls(names)

    # -- basic container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, pos: int) -> Attribute:
        return self._attributes[pos]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._hash == other._hash and [
            (a.name, a.kind) for a in self._attributes
        ] == [(a.name, a.kind) for a in other._attributes]

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(a.name for a in self._attributes)
        return f"Schema({inner})"

    # -- lookup ----------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def index_of(self, name: str) -> int:
        """Position of attribute ``name`` (qualified or unambiguous base name).

        Raises :class:`SchemaError` when the name is unknown.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.names} has no attribute {name!r}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.index_of(name)]

    def indices_of(self, names: Sequence[str]) -> tuple[int, ...]:
        return tuple(self.index_of(n) for n in names)

    def progressing_indices(self) -> tuple[int, ...]:
        """Positions of attributes flagged as progressing."""
        return tuple(
            i for i, a in enumerate(self._attributes) if a.progressing
        )

    # -- derivation -------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema containing only ``names``, in the given order."""
        return Schema(self._attributes[self.index_of(n)] for n in names)

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (join output); names must stay unique."""
        return Schema(self._attributes + other._attributes)

    def qualify(self, prefix: str) -> "Schema":
        """Qualify every attribute with ``prefix.``."""
        return Schema(a.qualified(prefix) for a in self._attributes)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Rename attributes according to ``mapping`` (old name -> new)."""
        renamed = []
        for a in self._attributes:
            new = mapping.get(a.name, a.name)
            renamed.append(Attribute(new, a.kind, a.progressing))
        return Schema(renamed)

    def check_arity(self, values: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` unless ``values`` has matching arity."""
        if len(values) != len(self._attributes):
            raise SchemaError(
                f"schema {self.names} has arity {len(self._attributes)}, "
                f"got {len(values)} values"
            )


@dataclass(frozen=True, slots=True)
class AttributeOrigin:
    """Provenance of one output attribute of an operator.

    ``input_index`` identifies which input stream the attribute derives from
    (0 for unary operators; 0 = left / 1 = right for joins).
    ``input_attribute`` is the attribute name in that input's schema.
    ``exact`` is True when the output value equals the input value (identity
    or pure carry-through); only exact origins admit safe feedback
    propagation, because a predicate on a *computed* value (e.g. an average)
    cannot be translated into a predicate on input tuples.
    """

    input_index: int
    input_attribute: str
    exact: bool = True


@dataclass(frozen=True)
class SchemaMapping:
    """Lineage from an operator's output schema back to its input schemas.

    ``origins`` maps each output attribute name to a tuple of
    :class:`AttributeOrigin` records: join attributes originate from both
    inputs (one origin per input), computed attributes (aggregates) have no
    origins at all, and carried attributes have exactly one origin.

    The safe-propagation planner walks this structure:  a feedback pattern
    can be pushed to input *i* iff every non-wildcard atom of the pattern
    sits on an output attribute that has an *exact* origin in input *i*, and
    no non-wildcard atom sits on an attribute exclusive to a different input
    (paper Definition 2 and the JOIN discussion in section 4.2).
    """

    output_schema: Schema
    input_schemas: tuple[Schema, ...]
    origins: dict[str, tuple[AttributeOrigin, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, origin_list in self.origins.items():
            if name not in self.output_schema:
                raise SchemaError(
                    f"mapping mentions unknown output attribute {name!r}"
                )
            for origin in origin_list:
                if origin.input_index >= len(self.input_schemas):
                    raise SchemaError(
                        f"origin of {name!r} references input "
                        f"{origin.input_index} but mapping has "
                        f"{len(self.input_schemas)} inputs"
                    )
                if origin.input_attribute not in self.input_schemas[
                    origin.input_index
                ]:
                    raise SchemaError(
                        f"origin of {name!r} references unknown input "
                        f"attribute {origin.input_attribute!r}"
                    )

    def origins_of(self, output_attribute: str) -> tuple[AttributeOrigin, ...]:
        """Origins of an output attribute; empty for computed attributes."""
        return self.origins.get(output_attribute, ())

    def exact_origin_in(
        self, output_attribute: str, input_index: int
    ) -> AttributeOrigin | None:
        """The exact origin of ``output_attribute`` in ``input_index``, if any."""
        for origin in self.origins_of(output_attribute):
            if origin.input_index == input_index and origin.exact:
                return origin
        return None

    @classmethod
    def identity(cls, schema: Schema) -> "SchemaMapping":
        """Mapping for an operator whose output carries its input unchanged."""
        return cls(
            output_schema=schema,
            input_schemas=(schema,),
            origins={
                a.name: (AttributeOrigin(0, a.name, exact=True),)
                for a in schema
            },
        )

    @classmethod
    def for_join(
        cls,
        left: Schema,
        right: Schema,
        join_attributes: Sequence[tuple[str, str]],
        output_schema: Schema | None = None,
    ) -> "SchemaMapping":
        """Mapping for an equi-join.

        ``join_attributes`` pairs (left_name, right_name).  The default
        output schema is the paper's (L, J, R) layout: left-exclusive
        attributes, then join attributes (under their left names), then
        right-exclusive attributes.
        """
        left_join = {l for l, _ in join_attributes}
        right_join = {r for _, r in join_attributes}
        if output_schema is None:
            attrs = [a for a in left if a.name not in left_join]
            attrs += [left.attribute(l) for l, _ in join_attributes]
            attrs += [a for a in right if a.name not in right_join]
            output_schema = Schema(attrs)
        origins: dict[str, tuple[AttributeOrigin, ...]] = {}
        right_of_left = dict(join_attributes)
        for attr in output_schema:
            name = attr.name
            if name in right_of_left:  # join attribute: two exact origins
                origins[name] = (
                    AttributeOrigin(0, name, exact=True),
                    AttributeOrigin(1, right_of_left[name], exact=True),
                )
            elif name in left and name not in right_join:
                origins[name] = (AttributeOrigin(0, name, exact=True),)
            elif name in right:
                origins[name] = (AttributeOrigin(1, name, exact=True),)
        return cls(output_schema, (left, right), origins)
