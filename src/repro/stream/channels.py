"""Async channels: the bridge between network endpoints and a plan.

The serving layer (``repro.serving``, docs/serving.md) turns the asyncio
engine into a long-running service: socket handlers on one side, an
always-on dataflow on the other.  This module is the seam between them,
deliberately placed in the engine-agnostic stream substrate:

* :class:`Channel` is the *ingest* adapter -- a bounded, closable,
  multi-producer channel whose :meth:`Channel.stream` async generator
  plugs straight into :class:`~repro.operators.source.
  AsyncIterableSource` (``Flow.ingest``).  When the plan's interior
  queues cross their high-water marks, the engine's pause
  :class:`~repro.core.feedback.FlowControlPunctuation` parks the source
  coroutine, the channel fills to its own capacity, and
  :meth:`Channel.put` awaits -- which suspends the socket handler and
  stops it reading, so backpressure reaches the client's TCP connection
  without a single dropped element.

* :class:`Broadcast` is the *delivery* adapter -- a fan-out hub a
  :class:`~repro.operators.sink.PushSink` publishes into
  (``.push(...)``).  Every subscriber gets a bounded buffer; when any
  buffer crosses the hub's high-water mark the hub's *gate* closes, and
  admission paths that honour :meth:`Broadcast.wait_open` (the serving
  supervisor's ingest) stall new input until the slowest consumer drains
  back below the low-water mark.  Nothing is ever dropped: a slow
  consumer converts into upstream delay, exactly like the engine's
  in-plan watermarks.

Both classes are single-event-loop objects (the serving layer multiplexes
every flow on one loop); producers and consumers must share that loop.
They survive engine restarts: a supervisor that rebuilds a crashed flow
re-subscribes a fresh ``AsyncIterableSource`` to the *same* channel, so
elements admitted while the flow was down are delivered by the next run.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, AsyncIterator

from repro.errors import ServingError
from repro.stream.schema import Schema

__all__ = ["Broadcast", "Channel", "Subscription"]


class Channel:
    """Bounded multi-producer channel feeding an async-iterable source.

    ``capacity`` bounds the in-channel backlog: :meth:`put` awaits while
    the buffer is full, so a producer (a socket handler) is suspended --
    not failed, not dropped -- until the plan drains.  ``close()`` ends
    the stream: the consuming source sees end-of-stream once the backlog
    is drained, which is how the serving layer's clean *drain* works.
    """

    def __init__(
        self, name: str, schema: Schema, *, capacity: int = 256
    ) -> None:
        if capacity < 1:
            raise ServingError(
                f"channel {name!r} needs capacity >= 1, got {capacity}"
            )
        self.name = name
        self.schema = schema
        self.capacity = capacity
        self._buffer: deque[Any] = deque()
        self._closed = False
        #: Sequence number of the last admitted element; doubles as the
        #: (virtual) arrival time yielded to bridged engines.
        self.admitted = 0
        self.delivered = 0
        self.peak_backlog = 0
        self._data = asyncio.Event()    # buffer non-empty, or closed
        self._space = asyncio.Event()   # backlog below capacity
        self._space.set()

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def idle(self) -> bool:
        """True when every admitted element has been taken by the plan."""
        return not self._buffer

    async def put(self, element: Any) -> int:
        """Admit one element, awaiting while the channel is full.

        Returns the element's 1-based admission sequence number.  Raises
        :class:`~repro.errors.ServingError` on a closed channel -- the
        caller (a socket handler) turns that into a client error.
        """
        while True:
            if self._closed:
                raise ServingError(
                    f"channel {self.name!r} is closed to new input"
                )
            if len(self._buffer) < self.capacity:
                break
            self._space.clear()
            await self._space.wait()
        self._buffer.append(element)
        self.admitted += 1
        if len(self._buffer) > self.peak_backlog:
            self.peak_backlog = len(self._buffer)
        self._data.set()
        return self.admitted

    def offer(self, element: Any) -> bool:
        """Non-blocking :meth:`put`: False when the channel is full."""
        if self._closed:
            raise ServingError(
                f"channel {self.name!r} is closed to new input"
            )
        if len(self._buffer) >= self.capacity:
            return False
        self._buffer.append(element)
        self.admitted += 1
        if len(self._buffer) > self.peak_backlog:
            self.peak_backlog = len(self._buffer)
        self._data.set()
        return True

    def close(self) -> None:
        """End the stream: no new input; the backlog still drains."""
        self._closed = True
        self._data.set()
        self._space.set()  # parked producers wake and observe the close

    async def stream(self) -> AsyncIterator[tuple[float, Any]]:
        """The ``(arrival, element)`` async iterator a source consumes.

        Designed as the ``events_factory`` of
        :meth:`repro.api.Flow.from_async_iterable` (which is exactly what
        ``Flow.ingest`` wires up): arrival is the admission sequence
        number, giving bridged engines a monotone virtual timeline.  May
        be called again after a run died -- the new iterator picks up the
        surviving backlog.
        """
        while True:
            while not self._buffer:
                if self._closed:
                    return
                self._data.clear()
                await self._data.wait()
            element = self._buffer.popleft()
            self.delivered += 1
            self._space.set()
            yield float(self.delivered), element


class Subscription:
    """One consumer's bounded buffer on a :class:`Broadcast` hub.

    Async-iterable: ``async for element in subscription`` yields
    published elements in order and ends when the hub closes (after the
    backlog drains) or the subscription is cancelled via :meth:`close`.
    """

    __slots__ = ("hub", "buffer", "received", "_data", "_closed")

    def __init__(self, hub: "Broadcast") -> None:
        self.hub = hub
        self.buffer: deque[Any] = deque()
        self.received = 0
        self._data = asyncio.Event()
        self._closed = False

    def __len__(self) -> int:
        return len(self.buffer)

    def close(self) -> None:
        """Detach from the hub (a client disconnected)."""
        if self._closed:
            return
        self._closed = True
        self._data.set()
        self.hub._detach(self)

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> Any:
        while not self.buffer:
            if self._closed or self.hub.closed:
                self.close()
                raise StopAsyncIteration
            self._data.clear()
            await self._data.wait()
        element = self.buffer.popleft()
        self.received += 1
        self.hub._drained()
        return element


class Broadcast:
    """Fan-out delivery hub with bounded buffers and an admission gate.

    A :class:`~repro.operators.sink.PushSink` publishes synchronously
    (from inside the engine's sink callback); each live subscriber gets
    the element appended to its own bounded buffer.  When any buffer
    reaches ``high_water`` the gate closes; once *every* buffer is back
    at or below ``low_water`` it re-opens.  Publishing itself never
    blocks and never drops -- the bound is enforced by admission paths
    awaiting :meth:`wait_open` before feeding the plan more input, which
    is how a slow SSE/websocket consumer stalls the producing client
    instead of ballooning server memory (docs/serving.md).
    """

    def __init__(
        self,
        name: str,
        *,
        high_water: int = 64,
        low_water: int | None = None,
    ) -> None:
        if high_water < 1:
            raise ServingError(
                f"hub {name!r} needs high_water >= 1, got {high_water}"
            )
        if low_water is None:
            low_water = high_water // 4
        if not 0 <= low_water < high_water:
            raise ServingError(
                f"hub {name!r} needs 0 <= low_water < high_water, got "
                f"low_water={low_water}, high_water={high_water}"
            )
        self.name = name
        self.high_water = high_water
        self.low_water = low_water
        self._subscribers: list[Subscription] = []
        self._gate = asyncio.Event()
        self._gate.set()
        self.closed = False
        self.published = 0
        self.peak_backlog = 0
        #: Gate transitions: delivery-side pause/resume counts, the
        #: serving twin of the engine's pauses_issued/resumes_issued.
        self.pauses = 0
        self.resumes = 0

    @property
    def subscribers(self) -> int:
        return len(self._subscribers)

    @property
    def backlog(self) -> int:
        """The deepest current subscriber buffer."""
        return max((len(s) for s in self._subscribers), default=0)

    @property
    def gate_open(self) -> bool:
        return self._gate.is_set()

    def subscribe(self) -> Subscription:
        if self.closed:
            raise ServingError(f"hub {self.name!r} is closed")
        subscription = Subscription(self)
        self._subscribers.append(subscription)
        return subscription

    def _detach(self, subscription: Subscription) -> None:
        try:
            self._subscribers.remove(subscription)
        except ValueError:
            return
        self._drained()

    def publish(self, element: Any) -> None:
        """Deliver ``element`` to every subscriber (synchronous)."""
        self.published += 1
        for subscription in self._subscribers:
            subscription.buffer.append(element)
            subscription._data.set()
        backlog = self.backlog
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog
        if backlog >= self.high_water and self._gate.is_set():
            self._gate.clear()
            self.pauses += 1

    def _drained(self) -> None:
        """A subscriber popped (or left); maybe re-open the gate."""
        if self._gate.is_set():
            return
        if self.backlog <= self.low_water:
            self._gate.set()
            self.resumes += 1

    async def wait_open(self) -> None:
        """Park until every subscriber is below the low-water mark."""
        await self._gate.wait()

    def close(self) -> None:
        """End delivery: subscribers finish once their buffers drain."""
        self.closed = True
        for subscription in list(self._subscribers):
            subscription._data.set()
        self._gate.set()
