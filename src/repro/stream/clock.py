"""Clocks: virtual time for simulation, wall time for the threaded runtime.

The experiments in the paper are timing-sensitive (PACE tolerances, output
divergence, execution-time comparisons).  Running them against wall-clock
time in Python would make results depend on interpreter speed and the host
machine, so the primary engine uses :class:`VirtualClock` -- a discrete-event
clock advanced explicitly by the simulator.  Operator cost models charge
virtual seconds per unit of work, which keeps the paper's cost *ratios*
while making every run deterministic.
"""

from __future__ import annotations

import time
from typing import Protocol

from repro.errors import EngineError

__all__ = ["Clock", "VirtualClock", "WallClock"]


class Clock(Protocol):
    """Minimal clock interface used by operators and metrics."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class VirtualClock:
    """A simulated clock that only moves when the engine advances it.

    Time is a float in seconds, starting at ``origin`` (default 0.0).
    Moving backwards raises :class:`~repro.errors.EngineError`; a
    discrete-event simulation must never rewind.
    """

    __slots__ = ("_now",)

    def __init__(self, origin: float = 0.0) -> None:
        self._now = float(origin)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Jump to an absolute time at or after the current time."""
        if timestamp < self._now - 1e-12:
            raise EngineError(
                f"virtual clock cannot go backwards: now={self._now}, "
                f"requested={timestamp}"
            )
        self._now = max(self._now, float(timestamp))

    def advance_by(self, delta: float) -> None:
        """Move forward by a non-negative number of seconds."""
        if delta < 0:
            raise EngineError(f"cannot advance clock by negative delta {delta}")
        self._now += delta

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class WallClock:
    """Real time, measured from instantiation with a monotonic source."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._start

    def __repr__(self) -> str:
        return f"WallClock(now={self.now():.6f})"
