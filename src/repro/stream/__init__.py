"""Stream substrate: schemas, tuples, pages, queues, control, clocks.

This package is the foundation layer (system S1 in DESIGN.md): the
inter-operator connection structure of the paper's Figure 3 -- page
queues (section 5, now optionally watermark-bounded for backpressure)
paired with bidirectional out-of-band control channels.  Everything here
is engine-agnostic and carries no query or feedback semantics of its
own.  Higher layers build on it:

* :mod:`repro.punctuation` defines patterns and embedded punctuation;
* :mod:`repro.core` defines feedback punctuation and its correctness rules;
* :mod:`repro.operators` implement the query algebra;
* :mod:`repro.engine` drives plans on a virtual or wall clock.
"""

from repro.stream.channels import Broadcast, Channel, Subscription
from repro.stream.clock import Clock, VirtualClock, WallClock
from repro.stream.control import (
    ControlChannel,
    ControlMessage,
    ControlMessageKind,
    Direction,
)
from repro.stream.pages import DEFAULT_PAGE_SIZE, Page
from repro.stream.queues import DataQueue
from repro.stream.schema import Attribute, AttributeOrigin, Schema, SchemaMapping
from repro.stream.tuples import StreamTuple
from repro.stream.waiters import (
    AsyncioConditionWaiter,
    ThreadConditionWaiter,
    Waiter,
)

__all__ = [
    "AsyncioConditionWaiter",
    "Attribute",
    "AttributeOrigin",
    "Broadcast",
    "Channel",
    "Clock",
    "ControlChannel",
    "ControlMessage",
    "ControlMessageKind",
    "DataQueue",
    "DEFAULT_PAGE_SIZE",
    "Direction",
    "Page",
    "Schema",
    "SchemaMapping",
    "StreamTuple",
    "Subscription",
    "ThreadConditionWaiter",
    "VirtualClock",
    "Waiter",
    "WallClock",
]
