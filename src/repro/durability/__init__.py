"""Durable feeds: punctuation-aligned checkpointing and recovery.

The paper's thesis is that punctuation is a general in-band control
plane; this package applies it to fault tolerance.  A
:class:`~repro.core.feedback.CheckpointPunctuation` marker sweeps the
plan like any punctuation (a Chandy-Lamport cut aligned at multi-input
operators), snapshotting each operator's state into a pluggable
:class:`CheckpointStore`; replayable sources record the offset each
epoch captured, and ``flow.run(recover_from=...)`` restores state,
rewinds sources, and -- under ``ingestion_policy="exactly-once"`` --
deduplicates the sink-side replay window (the AsterixDB-style
declarative ingestion policies).  See ``docs/durability.md``.
"""

from repro.durability.coordinator import (
    CheckpointCoordinator,
    INGESTION_POLICIES,
    activate_durability,
    delivery_key,
)
from repro.durability.replay import ReplayableSource
from repro.durability.store import (
    CheckpointStore,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    as_checkpoint_store,
)

__all__ = [
    "CheckpointCoordinator",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "INGESTION_POLICIES",
    "MemoryCheckpointStore",
    "ReplayableSource",
    "activate_durability",
    "as_checkpoint_store",
    "delivery_key",
]
