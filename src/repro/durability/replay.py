"""Replayable sources: inputs a recovery run can rewind.

Recovery replays a source by re-running its ``events()`` generator and
suppressing emission of the first ``offset`` elements (the prefix already
inside the recovered checkpoint), so the *only* requirement on a source
is that ``events()`` be re-invocable and deterministic.  The built-in
sources already qualify: :class:`~repro.operators.source.ListSource`
re-iterates its timeline, :class:`~repro.operators.source.
GeneratorSource` and :class:`~repro.operators.source.
AsyncIterableSource` re-invoke their factories, and
:class:`~repro.operators.source.PunctuatedSource` rebuilds its
punctuator -- replaying the skipped prefix through it keeps the emitted
suffix byte-identical.

:class:`ReplayableSource` is the adapter for everything else: it accepts
either a zero-argument factory *or* a plain sequence of ``(arrival,
element)`` pairs (materialised once, so even a one-shot iterable becomes
re-iterable), and refuses a bare generator object up front -- a
generator replays as an *empty* stream the second time, which recovery
would silently interpret as "this source finished", corrupting the
resumed output.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import DurabilityError
from repro.operators.source import GeneratorSource
from repro.stream.schema import Schema

__all__ = ["ReplayableSource"]


class ReplayableSource(GeneratorSource):
    """A source whose event stream is guaranteed re-runnable.

    ``events`` may be a zero-argument factory returning an iterable of
    ``(arrival_time, element)`` pairs (invoked fresh on every run --
    original and recovery alike) or any non-generator iterable, which is
    materialised into a list once at construction.
    """

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        events: Callable[[], Iterable[tuple[float, Any]]]
        | Iterable[tuple[float, Any]],
        **kwargs: Any,
    ) -> None:
        if callable(events):
            factory = events
        elif isinstance(events, Iterator):
            raise DurabilityError(
                f"{name}: a bare iterator/generator cannot be replayed "
                f"(it would be empty on the recovery run); pass a "
                f"zero-argument factory or a sequence instead"
            )
        else:
            timeline = list(events)

            def factory() -> Iterable[tuple[float, Any]]:
                return iter(timeline)

        super().__init__(name, output_schema, factory, **kwargs)
