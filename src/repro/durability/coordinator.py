"""Checkpoint coordination: epochs, snapshots, replay offsets, recovery.

One :class:`CheckpointCoordinator` rides inside each
:class:`~repro.engine.runtime.RuntimeCore` when durability is active
(``flow.run(checkpoint_every=..., checkpoint_store=...,
recover_from=...)``).  It owns the four jobs the runtime delegates:

* **marker injection** -- :meth:`wrap_events` / :meth:`wrap_aevents`
  wrap a source's event iterator, counting emitted elements and yielding
  a :class:`~repro.core.feedback.CheckpointPunctuation` every
  ``checkpoint_every`` elements (recording the source's offset for that
  epoch at the same instant);
* **snapshots** -- :meth:`snapshot` pickles an operator's
  ``snapshot_state`` into the store when the marker passes it, charging
  the per-operator checkpoint counters;
* **replay** -- the same event wrappers skip a source's first
  ``replay_offsets[name]`` elements on a recovery run, which re-drives
  the source's own generator (punctuators and all) while suppressing
  emission of the already-consumed prefix -- any deterministic source is
  therefore replayable with no source-side code;
* **recovery** -- :meth:`restore` finds the latest *complete* epoch in a
  store, restores every operator's snapshot, computes replay offsets,
  rebuilds sink output from the delivery logs, and (under exactly-once
  ingestion) arms each sink's replay-window deduplication filter.

The consistency argument is Chandy-Lamport with aligned markers: a
marker flows in band behind every pre-cut tuple, multi-input operators
block a port whose marker arrived until the sibling ports catch up (see
``Operator._on_checkpoint_marker``), and operator-internal buffers that
the marker *does* overtake (a Partition's lane stash, a PriorityBuffer's
pending heap) are part of the snapshot itself -- so every in-flight
tuple is captured exactly once, either in an operator snapshot or in the
replayable suffix of a source.
"""

from __future__ import annotations

import pickle
import time
from collections import Counter
from typing import Any, AsyncIterator, Iterable, Iterator

from repro.core.feedback import CheckpointPunctuation
from repro.engine.plan import QueryPlan
from repro.errors import DurabilityError
from repro.operators.base import Operator, SourceOperator
from repro.operators.sink import CollectSink
from repro.durability.store import (
    CheckpointStore,
    MemoryCheckpointStore,
    as_checkpoint_store,
)

__all__ = [
    "CheckpointCoordinator",
    "activate_durability",
    "delivery_key",
]

_PICKLE_PROTOCOL = 4

INGESTION_POLICIES = ("exactly-once", "at-least-once")


def delivery_key(element: Any) -> Any:
    """Identity under which sink deliveries deduplicate on replay.

    Stream tuples hash by (schema names, values), so replayed instances
    match their pre-crash deliveries; anything unhashable falls back to
    its pickled bytes.
    """
    try:
        hash(element)
    except TypeError:
        return pickle.dumps(element, protocol=_PICKLE_PROTOCOL)
    return element


class CheckpointCoordinator:
    """Per-runtime checkpoint/recovery state (see module docstring)."""

    def __init__(
        self,
        plan: QueryPlan,
        store: CheckpointStore,
        *,
        every: int | None = None,
        policy: str = "exactly-once",
    ) -> None:
        if policy not in INGESTION_POLICIES:
            raise DurabilityError(
                f"unknown ingestion_policy {policy!r}; expected one of "
                f"{INGESTION_POLICIES}"
            )
        if every is not None and every <= 0:
            raise DurabilityError(
                f"checkpoint_every must be a positive tuple count, "
                f"got {every!r}"
            )
        self.plan = plan
        self.store = store
        self.every = every
        self.policy = policy
        #: Elements each source must skip on this run (recovery rewind).
        self.replay_offsets: dict[str, int] = {}
        #: Live per-source emission counts (for terminal finished records).
        self.live_offsets: dict[str, int] = {}
        #: Epoch the current run was restored from (None = fresh run).
        self.recovered_epoch: int | None = None
        #: Upstream CHECKPOINT acknowledgements per epoch (sink -> source).
        self.acks: Counter[int] = Counter()

    # -- marker injection ---------------------------------------------------------

    def wrap_events(
        self, source: SourceOperator, events: Iterable[tuple[float, Any]]
    ) -> Iterator[tuple[float, Any]]:
        """Offset-count ``events``, skipping the replayed prefix and
        injecting one checkpoint marker every ``checkpoint_every``
        elements."""
        skip = self.replay_offsets.get(source.name, 0)
        every = self.every
        count = 0
        self.live_offsets[source.name] = skip
        for arrival, element in events:
            count += 1
            if count <= skip:
                continue
            yield arrival, element
            self.live_offsets[source.name] = count
            if every and count % every == 0:
                yield arrival, self._marker(source, count, arrival)

    async def wrap_aevents(
        self,
        source: SourceOperator,
        aevents: Any,
    ) -> AsyncIterator[tuple[float, Any]]:
        """Async twin of :meth:`wrap_events` for ``aevents`` adapters."""
        skip = self.replay_offsets.get(source.name, 0)
        every = self.every
        count = 0
        self.live_offsets[source.name] = skip
        async for arrival, element in aevents:
            count += 1
            if count <= skip:
                continue
            yield arrival, element
            self.live_offsets[source.name] = count
            if every and count % every == 0:
                yield arrival, self._marker(source, count, arrival)

    def _marker(
        self, source: SourceOperator, offset: int, arrival: float
    ) -> CheckpointPunctuation:
        epoch = offset // self.every
        self.store.record_offset(epoch, source.name, offset)
        return CheckpointPunctuation(
            epoch, source=source.name, offset=offset, issued_at=arrival
        )

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, operator: Operator, marker: CheckpointPunctuation) -> None:
        """Persist ``operator``'s state for the marker's epoch.

        A sink's delivery log flushes *before* the state record is
        written: an epoch's state record existing therefore implies the
        log covers at least that epoch's delivery prefix, which is what
        the exactly-once replay window depends on.
        """
        writer = getattr(operator, "_ckpt_writer", None)
        if writer is not None:
            writer.flush()
        started = time.perf_counter()
        blob = pickle.dumps(
            operator.snapshot_state(), protocol=_PICKLE_PROTOCOL
        )
        self.store.record_state(marker.epoch, operator.name, blob)
        elapsed = time.perf_counter() - started
        metrics = operator.metrics
        metrics.checkpoints += 1
        metrics.snapshot_bytes += len(blob)
        metrics.snapshot_time += elapsed

    def acknowledge(
        self, source: SourceOperator, marker: CheckpointPunctuation
    ) -> None:
        """A sink's epoch-completion ACK travelled back up to ``source``."""
        if isinstance(marker, CheckpointPunctuation):
            self.acks[marker.epoch] += 1

    def operator_finished(self, operator: Operator) -> None:
        """Runtime hook at operator finish: settle durable side-state.

        A finishing *source* gets a terminal offset record (its whole
        stream is pre-cut for every later epoch); a finishing *sink*
        flushes its delivery-log tail so a completed run's log is whole.
        """
        if isinstance(operator, SourceOperator):
            self.store.record_finished(
                operator.name,
                self.live_offsets.get(operator.name, 0),
            )
            return
        writer = getattr(operator, "_ckpt_writer", None)
        if writer is not None:
            writer.flush()

    # -- epoch bookkeeping --------------------------------------------------------

    def _expected(self) -> tuple[list[str], list[str]]:
        operators = [
            op.name for op in self.plan
            if not isinstance(op, SourceOperator)
        ]
        sources = [op.name for op in self.plan.sources()]
        return operators, sources

    def complete_epochs(
        self, store: CheckpointStore | None = None
    ) -> list[int]:
        """Epochs safe to recover from: every operator snapshotted and
        every source offset (or terminally finished) recorded."""
        store = store or self.store
        operators, sources = self._expected()
        complete = []
        for epoch in store.epochs():
            if not all(store.has_state(epoch, name) for name in operators):
                continue
            if not all(
                store.load_offset(epoch, name) is not None
                or store.load_finished(name) is not None
                for name in sources
            ):
                continue
            complete.append(epoch)
        return complete

    def latest_complete(
        self, store: CheckpointStore | None = None
    ) -> int | None:
        complete = self.complete_epochs(store)
        return complete[-1] if complete else None

    # -- recovery ----------------------------------------------------------------

    def restore(self, store: CheckpointStore) -> int | None:
        """Rewind the plan to ``store``'s latest complete epoch.

        With no complete epoch the run degrades gracefully: sources
        replay from the beginning and (under exactly-once) the dedup
        window spans the whole delivery log, so the final sink output is
        still exactly the uninterrupted run's.
        """
        epoch = self.latest_complete(store)
        self.recovered_epoch = epoch
        for source in self.plan.sources():
            offset = None
            if epoch is not None:
                # The finished record stands in for a per-epoch offset
                # only relative to a recovered epoch (the source's whole
                # stream is pre-cut); with no complete epoch every source
                # replays from the beginning.
                offset = store.load_offset(epoch, source.name)
                if offset is None:
                    offset = store.load_finished(source.name)
            self.replay_offsets[source.name] = offset or 0
        sink_cut: dict[str, int] = {}
        if epoch is not None:
            for op in self.plan:
                if isinstance(op, SourceOperator):
                    continue
                blob = store.load_state(epoch, op.name)
                if blob is None:
                    continue
                state = pickle.loads(blob)
                if isinstance(op, CollectSink):
                    sink_cut[op.name] = len(state.get("results", ()))
                op.restore_state(state)
        for op in self.plan:
            if not isinstance(op, CollectSink) or op.outputs:
                continue
            log = store.read_delivery_log(op.name)
            if not log:
                continue
            op.results = [entry[1] for entry in log]
            op.arrivals = [(entry[0], entry[1]) for entry in log]
            if self.policy == "exactly-once":
                window = log[sink_cut.get(op.name, 0):]
                dedup = Counter(delivery_key(entry[1]) for entry in window)
                op._ckpt_dedup = dedup if dedup else None
        return epoch

    def attach_sinks(self) -> None:
        """Give every terminal collect sink a delivery-log writer."""
        for op in self.plan:
            if isinstance(op, CollectSink) and not op.outputs:
                op._ckpt_writer = self.store.delivery_writer(op.name)


def activate_durability(
    plan: QueryPlan,
    *,
    every: int | None = None,
    store: Any = None,
    recover_from: Any = None,
    policy: str = "exactly-once",
) -> CheckpointCoordinator:
    """Build (and, when recovering, apply) a plan's durability state.

    Called lazily by :class:`~repro.engine.runtime.RuntimeCore` when any
    of the durability run options is set.  ``store``/``recover_from``
    accept a :class:`~repro.durability.store.CheckpointStore` or a
    directory path; with only ``recover_from`` given, new checkpoints
    continue into the same store.
    """
    recover_store = as_checkpoint_store(recover_from)
    forward_store = as_checkpoint_store(store)
    if forward_store is None:
        forward_store = (
            recover_store if recover_store is not None
            else MemoryCheckpointStore()
        )
    coordinator = CheckpointCoordinator(
        plan, forward_store, every=every, policy=policy
    )
    if recover_store is not None:
        coordinator.restore(recover_store)
    coordinator.attach_sinks()
    return coordinator
