"""Pluggable scaling policies: pure decisions over runtime observations.

The controller samples the runtime (slot loads, queue occupancy) into an
immutable :class:`Observations` value and hands it to the configured
:class:`ScalePolicy`.  ``decide`` must be a pure function of its
argument -- no clocks, no runtime access -- which keeps every policy
unit-testable without an engine and keeps simulated runs deterministic.

A decision is one of:

* :class:`RebalanceAction` -- reassign specific slots to specific lanes
  (the skew-correction move);
* :class:`ScaleAction` -- grow or shrink the number of active lanes
  (the controller translates it into minimal slot moves via
  :func:`~repro.elasticity.rebalance.scale_assignments`);
* ``None`` -- leave the region alone this tick.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.elasticity.rebalance import DEFAULT_SLOTS_PER_LANE

__all__ = [
    "ElasticConfig",
    "GreedySlotPolicy",
    "Observations",
    "RebalanceAction",
    "ScaleAction",
    "ScalePolicy",
    "ScriptedPolicy",
]


@dataclass(frozen=True)
class RebalanceAction:
    """Move these slots to these lanes: ``(slot, destination_lane)``."""

    assignments: tuple[tuple[int, int], ...]

    @classmethod
    def moving(cls, assignments: Mapping[int, int]) -> "RebalanceAction":
        return cls(tuple(sorted(assignments.items())))


@dataclass(frozen=True)
class ScaleAction:
    """Run the region on exactly ``lanes`` active lanes."""

    lanes: int


@dataclass(frozen=True)
class Observations:
    """One shard region's state as sampled at a controller tick.

    ``slot_loads`` counts the tuples routed through each slot since the
    previous tick; ``table`` is the live slot-to-lane assignment.
    ``lane_occupancy`` is the current element count queued on each
    partition-to-lane edge (the congestion signal).
    """

    group: str
    fanout: int
    table: tuple[int, ...]
    slot_loads: tuple[int, ...]
    lane_occupancy: tuple[int, ...]
    min_lanes: int
    max_lanes: int

    @property
    def active_lanes(self) -> int:
        return len(set(self.table))

    def lane_loads(self) -> tuple[int, ...]:
        """Observed load per lane (slot loads summed by assignment)."""
        loads = [0] * self.fanout
        for slot, lane in enumerate(self.table):
            loads[lane] += self.slot_loads[slot]
        return tuple(loads)

    def skew(self) -> float:
        """Max over mean load across lanes in use (1.0 = balanced)."""
        in_use = set(self.table)
        loads = self.lane_loads()
        used = [loads[lane] for lane in sorted(in_use)]
        total = sum(used)
        if not used or total == 0:
            return 1.0
        return max(used) / (total / len(used))


class ScalePolicy(abc.ABC):
    """Decide what (if anything) to change about one shard region."""

    @abc.abstractmethod
    def decide(
        self, observations: Observations
    ) -> "RebalanceAction | ScaleAction | None":
        """Pure function of the observations; see the module docstring."""


class GreedySlotPolicy(ScalePolicy):
    """Move hot slots off the most-loaded lane until lanes level out.

    When the max/mean load ratio across active lanes exceeds
    ``imbalance``, the heaviest slots of the hottest lane migrate to the
    coolest lane -- greedily, at most ``max_moves`` slots per decision,
    and only while each move strictly improves the projected peak (a
    single monster key cannot be split, so relocating it alone is never
    proposed).  With ``scale_to_load`` set, the policy first requests a
    :class:`ScaleAction` growing the active lane count whenever total
    observed load exceeds ``scale_to_load`` tuples per tick (and
    shrinking when it falls below a quarter of that), modelling the
    admit-more-resources half of the elasticity loop.
    """

    def __init__(
        self,
        *,
        imbalance: float = 1.25,
        max_moves: int | None = None,
        scale_to_load: int | None = None,
    ) -> None:
        if imbalance < 1.0:
            raise ValueError(
                f"imbalance threshold must be >= 1.0, got {imbalance}"
            )
        if max_moves is not None and max_moves < 1:
            raise ValueError(f"max_moves must be >= 1, got {max_moves}")
        self.imbalance = float(imbalance)
        self.max_moves = max_moves
        self.scale_to_load = scale_to_load

    def decide(
        self, obs: Observations
    ) -> "RebalanceAction | ScaleAction | None":
        total = sum(obs.slot_loads)
        active = obs.active_lanes
        if self.scale_to_load is not None and total:
            want = max(
                obs.min_lanes,
                min(
                    obs.max_lanes,
                    -(-total // self.scale_to_load),  # ceil division
                ),
            )
            if want != active:
                return ScaleAction(want)
        if total == 0:
            return None
        loads = obs.lane_loads()
        in_use = sorted(set(obs.table))
        hot = max(in_use, key=lambda lane: (loads[lane], -lane))
        mean = total / len(in_use)
        if loads[hot] <= self.imbalance * mean:
            return None
        # Heaviest slots first; ties broken by slot index for determinism.
        hot_slots = sorted(
            (s for s, lane in enumerate(obs.table) if lane == hot),
            key=lambda s: (-obs.slot_loads[s], s),
        )
        projected = dict(enumerate(loads))
        moves: dict[int, int] = {}
        for slot in hot_slots:
            if self.max_moves is not None and len(moves) >= self.max_moves:
                break
            weight = obs.slot_loads[slot]
            if weight == 0 or weight == projected[hot]:
                continue  # moving dead weight / the whole lane helps nothing
            cold = min(in_use, key=lambda lane: (projected[lane], lane))
            if projected[cold] + weight >= projected[hot]:
                break  # no move strictly improves the peak
            moves[slot] = cold
            projected[hot] -= weight
            projected[cold] += weight
        if not moves:
            return None
        return RebalanceAction.moving(moves)


class ScriptedPolicy(ScalePolicy):
    """Replay a fixed sequence of decisions, one per tick, then idle.

    A deterministic test/demo seam: the property tests and the docs'
    skew demo script exact rebalances instead of depending on load
    thresholds.  (Replaying consumes the script, so this policy is
    deliberately not pure -- do not share one instance across runs.)
    """

    def __init__(
        self, actions: Iterable["RebalanceAction | ScaleAction | None"]
    ) -> None:
        self._script = list(actions)

    def decide(
        self, obs: Observations
    ) -> "RebalanceAction | ScaleAction | None":
        if not self._script:
            return None
        return self._script.pop(0)


@dataclass
class ElasticConfig:
    """Configuration for ``flow.run(elastic=...)``.

    ``interval`` is the controller cadence in engine time (virtual
    seconds on the simulator, wall seconds on the threaded/asyncio
    engines).  ``min_lanes``/``max_lanes`` bound scale decisions;
    ``max_lanes`` defaults to each region's built fanout (lanes are
    plan structure, so a region can never scale *beyond* its fanout --
    it parks unused replicas instead).  ``adapt_queues`` turns on
    adaptive watermarks: every bounded queue's capacity is re-sized to
    ``queue_headroom`` times its observed per-tick drain rate, clamped
    to ``[min_capacity, max_capacity]`` (``max_capacity`` defaults to
    each queue's built capacity).
    """

    min_lanes: int = 1
    max_lanes: int | None = None
    policy: ScalePolicy = field(default_factory=GreedySlotPolicy)
    interval: float = 1.0
    slots_per_lane: int = DEFAULT_SLOTS_PER_LANE
    adapt_queues: bool = False
    queue_headroom: float = 2.0
    min_capacity: int = 8
    max_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.min_lanes < 1:
            raise ValueError(
                f"min_lanes must be >= 1, got {self.min_lanes}"
            )
        if self.max_lanes is not None and self.max_lanes < self.min_lanes:
            raise ValueError(
                f"max_lanes ({self.max_lanes}) must be >= min_lanes "
                f"({self.min_lanes})"
            )
        if self.interval <= 0:
            raise ValueError(
                f"controller interval must be positive, got {self.interval}"
            )
        if self.slots_per_lane < 1:
            raise ValueError(
                f"slots_per_lane must be >= 1, got {self.slots_per_lane}"
            )
        if self.queue_headroom <= 0:
            raise ValueError(
                f"queue_headroom must be positive, got {self.queue_headroom}"
            )
        if self.min_capacity < 2:
            raise ValueError(
                f"min_capacity must be >= 2, got {self.min_capacity}"
            )
        if (
            self.max_capacity is not None
            and self.max_capacity < self.min_capacity
        ):
            raise ValueError(
                f"max_capacity ({self.max_capacity}) must be >= "
                f"min_capacity ({self.min_capacity})"
            )
