"""Routing tables, migration ledger and commands for elastic rebalancing.

The elasticity control plane routes keys through **slots** (Flink calls
them key groups): a key hashes to one of ``num_slots`` slots, and a
routing table maps each slot to a lane.  Rebalancing reassigns *slots*,
never individual keys, so a decision is a small table diff and the set
of keys that migrates is exactly the set whose slot moved -- the minimal
migration property the tests assert.

``num_slots`` is always a multiple of the fanout, so the identity table
(``slot % fanout``) routes every key to the same lane as the plain
``digest % fanout`` hash the :class:`~repro.operators.partition.Partition`
uses when elasticity is off -- turning the feature on with no rebalance
decisions is byte-identical to leaving it off.

One rebalance is a two-phase protocol coordinated through a
:class:`RebalanceRecord`, the shared deposit ledger that
:class:`~repro.core.feedback.RebalancePunctuation` markers carry by
reference:

1. **cut** -- the partition stops routing moved-slot tuples (they wait
   in its rebalance stash) and broadcasts a ``cut`` marker down every
   lane.  Each lane member the marker passes extracts the state of its
   moved keys and deposits it here; the merge counts arrivals and, once
   every lane's marker is in, acknowledges upstream.
2. **install** -- the partition broadcasts an ``install`` marker (each
   destination claims and merges its deposits), switches to the new
   table, and releases the stashed tuples *behind* the marker.

If the run ends while a cut is in flight the partition aborts: a
``restore`` marker makes every lane re-install its *own* deposits and
the old table stays live (see ``Partition.on_finish``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence
from zlib import crc32

from repro.errors import PlanError

__all__ = [
    "DEFAULT_SLOTS_PER_LANE",
    "RebalanceCommand",
    "RebalanceRecord",
    "RebalanceRouter",
    "canonical_key_value",
    "key_digest",
    "scale_assignments",
]

#: Slots per lane in the identity table -- the granularity of rebalancing.
DEFAULT_SLOTS_PER_LANE = 16


def canonical_key_value(value: Any) -> Any:
    """Collapse numeric types that compare equal onto one routing form.

    Python's value equality makes ``1 == 1.0 == True`` -- an unsharded
    group-by treats them as one group -- so routing must too, or a mixed
    int/float key column would split one logical group across replicas
    and the merged output would carry two partial aggregates for it.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def key_digest(key_values: Iterable[Any]) -> int:
    """Stable digest of concrete key values (crc32, not ``hash``).

    ``hash`` is salted per process (``PYTHONHASHSEED``); crc32 over the
    canonicalised values' reprs keeps routing identical across runs and
    hosts, which the deterministic simulator's reproducibility promise
    -- and every test pinning a tuple to a lane -- relies on.
    """
    digest = 0
    for value in key_values:
        digest = crc32(
            repr(canonical_key_value(value)).encode("utf-8"), digest
        )
    return digest


class RebalanceRouter:
    """An immutable slot-to-lane routing table."""

    __slots__ = ("table", "num_slots", "lanes_in_use")

    def __init__(self, table: Sequence[int]) -> None:
        if not table:
            raise PlanError("routing table must have at least one slot")
        self.table = tuple(int(lane) for lane in table)
        self.num_slots = len(self.table)
        self.lanes_in_use = frozenset(self.table)

    @classmethod
    def identity(
        cls, fanout: int, slots_per_lane: int = DEFAULT_SLOTS_PER_LANE
    ) -> "RebalanceRouter":
        """The table equivalent to plain ``digest % fanout`` hashing.

        ``fanout`` divides ``num_slots``, so ``table[d % num_slots]``
        equals ``d % fanout`` for every digest ``d`` -- arming a
        partition with this table changes no routing decision.
        """
        if slots_per_lane < 1:
            raise PlanError(
                f"slots_per_lane must be >= 1, got {slots_per_lane}"
            )
        return cls([s % fanout for s in range(fanout * slots_per_lane)])

    def slot_of_key(self, *key_values: Any) -> int:
        return key_digest(key_values) % self.num_slots

    def lane_of_key(self, *key_values: Any) -> int:
        return self.table[key_digest(key_values) % self.num_slots]

    def with_assignments(
        self, assignments: Mapping[int, int]
    ) -> "RebalanceRouter":
        """A new router with the given slots reassigned."""
        table = list(self.table)
        for slot, lane in assignments.items():
            table[slot] = lane
        return RebalanceRouter(table)

    def __repr__(self) -> str:
        return (
            f"RebalanceRouter({self.num_slots} slots over "
            f"{len(self.lanes_in_use)} lane(s))"
        )


def scale_assignments(
    table: Sequence[int], lanes: int
) -> dict[int, int]:
    """Minimal slot moves taking ``table`` onto exactly ``lanes`` lanes.

    Lanes ``0..lanes-1`` stay/become active; slots on higher lanes are
    evacuated, and slot counts are levelled so every active lane holds
    between ``floor`` and ``ceil`` of ``num_slots / lanes`` slots.  Only
    slots that *must* move do (evacuation plus levelling), and the
    result is deterministic: donors are scanned from the fullest lane,
    receivers from the emptiest, slot indices ascending.
    """
    num_slots = len(table)
    if not 1 <= lanes <= num_slots:
        raise PlanError(
            f"cannot scale a {num_slots}-slot table to {lanes} lane(s)"
        )
    counts = [0] * lanes
    for lane in table:
        if lane < lanes:
            counts[lane] += 1
    moves: dict[int, int] = {}

    def _receiver() -> int:
        return min(range(lanes), key=lambda lane: (counts[lane], lane))

    # Evacuate deactivated lanes onto the emptiest active lanes.
    for slot, lane in enumerate(table):
        if lane >= lanes:
            dest = _receiver()
            moves[slot] = dest
            counts[dest] += 1
    # Level: no active lane may hold more than ceil(num_slots / lanes).
    ceil = -(-num_slots // lanes)
    for lane in sorted(range(lanes), key=lambda ln: (-counts[ln], ln)):
        if counts[lane] <= ceil:
            break
        for slot, owner in enumerate(table):
            if counts[lane] <= ceil:
                break
            if owner == lane and slot not in moves:
                dest = _receiver()
                if counts[dest] >= counts[lane] - 1:
                    break  # no receiver improves the balance
                moves[slot] = dest
                counts[dest] += 1
                counts[lane] -= 1
    return moves


@dataclass(frozen=True)
class RebalanceCommand:
    """A controller decision: reassign these slots to these lanes.

    ``assignments`` is ``(slot, destination_lane)`` pairs.  The command
    travels to the partition as the payload of a ``REBALANCE``
    :class:`~repro.stream.control.ControlMessage` on its input control
    channel, so it is applied on the partition's own processing seat
    (thread-safe on every engine without extra locking).
    """

    assignments: tuple[tuple[int, int], ...]
    epoch_hint: int = 0  # diagnostics only; the partition numbers epochs

    @classmethod
    def moving(cls, assignments: Mapping[int, int]) -> "RebalanceCommand":
        return cls(tuple(sorted(assignments.items())))


class RebalanceRecord:
    """The shared deposit ledger of one in-flight rebalance.

    Lane members deposit extracted keyed state at the ``cut``, and claim
    it back at the ``install`` (or ``restore``).  The ledger is shared
    by reference through the marker and lock-guarded, because on the
    threaded engine each lane's members run on their own threads.

    ``positions`` maps every lane member's operator name to its
    ``(lane_index, member_position)`` seat; replicas of one stage share
    a ``member_position``, which is what keys the deposit buckets --
    state extracted from stage *p* of one lane installs into stage *p*
    of another.
    """

    def __init__(
        self,
        epoch: int,
        *,
        key_names: Sequence[str],
        moved: Mapping[int, int],
        num_slots: int,
        positions: Mapping[str, tuple[int, int]],
    ) -> None:
        self.epoch = int(epoch)
        self.key_names = tuple(key_names)
        self.moved = dict(moved)  # slot -> destination lane
        self.num_slots = int(num_slots)
        self.positions = dict(positions)
        self.keys_moved = 0
        self.aborted = False
        self._lock = threading.Lock()
        # (member_position, destination_lane) -> [(source_lane, blob)].
        self._deposits: dict[tuple[int, int], list[tuple[int, Any]]] = {}

    def dest_of(self, key_values: Sequence[Any]) -> int | None:
        """Destination lane for moved key values, None when unmoved."""
        return self.moved.get(key_digest(key_values) % self.num_slots)

    def deposit(
        self, position: int, source_lane: int, dest_lane: int, blob: Any
    ) -> bool:
        """Bank extracted state; False when the rebalance already aborted
        (the caller keeps -- re-installs -- the state itself)."""
        with self._lock:
            if self.aborted:
                return False
            self._deposits.setdefault((position, dest_lane), []).append(
                (source_lane, blob)
            )
            try:
                self.keys_moved += len(blob)
            except TypeError:
                self.keys_moved += 1
            return True

    def claim(self, position: int, dest_lane: int) -> list[Any]:
        """Pop every blob destined for this (stage, lane) seat."""
        with self._lock:
            return [
                blob
                for _, blob in self._deposits.pop((position, dest_lane), [])
            ]

    def reclaim(self, position: int, source_lane: int) -> list[Any]:
        """Abort path: pop every blob this seat itself deposited."""
        with self._lock:
            reclaimed: list[Any] = []
            for bucket_key in list(self._deposits):
                if bucket_key[0] != position:
                    continue
                kept = []
                for source, blob in self._deposits[bucket_key]:
                    if source == source_lane:
                        reclaimed.append(blob)
                    else:
                        kept.append((source, blob))
                if kept:
                    self._deposits[bucket_key] = kept
                else:
                    del self._deposits[bucket_key]
            return reclaimed

    def abort(self) -> None:
        with self._lock:
            self.aborted = True

    def __repr__(self) -> str:
        state = "aborted" if self.aborted else "live"
        return (
            f"RebalanceRecord(epoch={self.epoch}, "
            f"{len(self.moved)} slot(s), {state})"
        )


#: Signature of the routing callback handed to ``extract_keyed_state``.
RouteFn = Callable[[Sequence[Any]], "int | None"]
