"""Elastic feedback-driven autoscaling over the punctuation control plane.

The paper's thesis is that punctuation is a *general* inter-operator
control plane; this package proves it by making the engine scale itself.
An :class:`ElasticController` observes per-lane skew and per-edge queue
occupancy at runtime, a pluggable :class:`ScalePolicy` decides, and the
decision applies through a
:class:`~repro.core.feedback.RebalancePunctuation` riding the existing
shard-region protocol: keys migrate between lanes at punctuation-aligned
cuts, with only the state of moved keys travelling.

Entry point::

    from repro.elasticity import ElasticConfig, GreedySlotPolicy

    flow.run(elastic=ElasticConfig(min_lanes=1, max_lanes=4,
                                   policy=GreedySlotPolicy(),
                                   interval=0.5))

See ``docs/elasticity.md`` for policy authoring and the skew demo.
"""

from repro.elasticity.controller import ElasticController
from repro.elasticity.policy import (
    ElasticConfig,
    GreedySlotPolicy,
    Observations,
    RebalanceAction,
    ScaleAction,
    ScalePolicy,
    ScriptedPolicy,
)
from repro.elasticity.rebalance import (
    DEFAULT_SLOTS_PER_LANE,
    RebalanceCommand,
    RebalanceRecord,
    RebalanceRouter,
    canonical_key_value,
    key_digest,
    scale_assignments,
)

__all__ = [
    "DEFAULT_SLOTS_PER_LANE",
    "ElasticConfig",
    "ElasticController",
    "GreedySlotPolicy",
    "Observations",
    "RebalanceAction",
    "RebalanceCommand",
    "RebalanceRecord",
    "RebalanceRouter",
    "ScaleAction",
    "ScalePolicy",
    "ScriptedPolicy",
    "canonical_key_value",
    "key_digest",
    "scale_assignments",
]
