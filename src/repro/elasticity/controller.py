"""The elastic controller: observe, decide, apply -- over punctuation.

One :class:`ElasticController` rides a run.  On a configurable cadence
(engine-driven: a heap event on the simulator, a ticker thread/task on
the concurrent engines) it samples each armed shard region's slot loads
and lane-edge occupancy, asks the configured
:class:`~repro.elasticity.policy.ScalePolicy` for a decision, and
applies it by sending a ``REBALANCE``
:class:`~repro.stream.control.ControlMessage` carrying a
:class:`~repro.elasticity.rebalance.RebalanceCommand` down the
partition's input control channel.  The partition runs the two-phase
cut/install protocol from its own processing seat, so the controller
never mutates operator state directly -- it only reads counters (safe
on every engine) and enqueues control.

Regions whose lane members cannot migrate keyed state -- and engines
that cannot rebalance at all -- **decline** with a recorded reason
(mirroring the optimizer's fusibility declines) instead of failing the
run; see ``declines`` on the resulting ``PlanMetrics``.

The controller also owns **adaptive watermarks** when
``ElasticConfig.adapt_queues`` is set: each bounded queue's capacity is
re-sized to track its observed per-tick drain rate (see
:meth:`ElasticController._adapt_queues`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.elasticity.policy import (
    ElasticConfig,
    Observations,
    RebalanceAction,
    ScaleAction,
)
from repro.elasticity.rebalance import (
    RebalanceCommand,
    RebalanceRouter,
    scale_assignments,
)
from repro.errors import EngineError
from repro.stream.control import (
    ControlMessage,
    ControlMessageKind,
    Direction,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import ShardGroup
    from repro.operators.partition import Partition

__all__ = ["ElasticController"]


class ElasticController:
    """Samples shard skew and queue occupancy; applies scale decisions."""

    #: Name stamped as the sender of controller-issued control messages.
    SENDER = "elastic-controller"

    def __init__(self, runtime: Any, config: ElasticConfig) -> None:
        if not isinstance(config, ElasticConfig):
            raise EngineError(
                "elastic= expects an ElasticConfig, got "
                f"{type(config).__name__}"
            )
        self.runtime = runtime
        self.config = config
        self.policy = config.policy
        #: ``(what, why)`` pairs for everything elasticity skipped.
        self.declines: list[tuple[str, str]] = []
        #: Armed regions: group name -> partition operator.
        self.armed: dict[str, "Partition"] = {}
        self.ticks = 0
        self.decisions = 0
        self.queue_resizes = 0
        #: Per-group slot-load counter snapshot at the previous tick.
        self._load_seen: dict[str, list[int]] = {}
        #: Per-queue (enqueued, occupancy, built capacity) at last tick.
        self._queue_seen: dict[str, tuple[int, int, int]] = {}
        for group in runtime.plan.shard_groups:
            self._arm(group)
        if not runtime.plan.shard_groups:
            self.declines.append(
                ("plan", "no shard regions to rebalance")
            )

    # -- arming ----------------------------------------------------------------------

    def _arm(self, group: "ShardGroup") -> None:
        plan = self.runtime.plan
        partition = plan.operator(group.partition)
        if group.n < 2:
            self.declines.append(
                (group.name, "single-lane region: nothing to rebalance")
            )
            return
        blockers = []
        for lane in group.lanes:
            for name in lane:
                reason = plan.operator(name).rebalance_migratable(
                    partition.key
                )
                if reason is not None:
                    blockers.append(f"{name}: {reason}")
        if blockers:
            self.declines.append((group.name, "; ".join(blockers)))
            return
        partition.enable_rebalancing(
            RebalanceRouter.identity(
                partition.fanout, self.config.slots_per_lane
            )
        )
        self.armed[group.name] = partition

    # -- the loop --------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """One observe-decide-apply cycle (engine cadence hook)."""
        self.ticks += 1
        for group in self.runtime.plan.shard_groups:
            partition = self.armed.get(group.name)
            if partition is None:
                continue
            obs = self._observe(group, partition)
            if partition.finished or partition.rebalance_pending:
                continue  # sampled, but no new decision mid-flight
            action = self.policy.decide(obs)
            command = self._translate(action, obs, partition)
            if command is None:
                continue
            self.decisions += 1
            self._send(partition, command, now)
        if self.config.adapt_queues:
            self._adapt_queues()

    def _observe(
        self, group: "ShardGroup", partition: "Partition"
    ) -> Observations:
        loads = partition.slot_loads
        seen = self._load_seen.get(group.name)
        if seen is None:
            delta = tuple(loads)
        else:
            delta = tuple(
                now - before for now, before in zip(loads, seen)
            )
        self._load_seen[group.name] = list(loads)
        max_lanes = self.config.max_lanes
        return Observations(
            group=group.name,
            fanout=partition.fanout,
            table=partition.router.table,
            slot_loads=delta,
            lane_occupancy=tuple(
                edge.queue.occupancy for edge in partition.outputs
            ),
            min_lanes=min(self.config.min_lanes, partition.fanout),
            max_lanes=(
                partition.fanout
                if max_lanes is None
                else min(max_lanes, partition.fanout)
            ),
        )

    def _translate(
        self,
        action: "RebalanceAction | ScaleAction | None",
        obs: Observations,
        partition: "Partition",
    ) -> RebalanceCommand | None:
        """Validate a policy decision into a concrete slot-move command."""
        if action is None:
            return None
        table = obs.table
        if isinstance(action, ScaleAction):
            lanes = max(obs.min_lanes, min(obs.max_lanes, action.lanes))
            if lanes == obs.active_lanes:
                return None
            moves = scale_assignments(table, lanes)
        elif isinstance(action, RebalanceAction):
            moves = {}
            for slot, dest in action.assignments:
                if not 0 <= slot < len(table):
                    raise EngineError(
                        f"{type(self.policy).__name__} assigned unknown "
                        f"slot {slot} (table has {len(table)})"
                    )
                if not 0 <= dest < partition.fanout:
                    raise EngineError(
                        f"{type(self.policy).__name__} assigned slot "
                        f"{slot} to unknown lane {dest} "
                        f"(fanout {partition.fanout})"
                    )
                if table[slot] != dest:
                    moves[slot] = dest
            if moves:
                resulting = set(table)
                for slot, dest in moves.items():
                    resulting.add(dest)
                if len(resulting) > obs.max_lanes:
                    self.declines.append(
                        (
                            obs.group,
                            f"decision would use {len(resulting)} lanes, "
                            f"max_lanes is {obs.max_lanes}",
                        )
                    )
                    return None
        else:
            raise EngineError(
                f"{type(self.policy).__name__}.decide returned "
                f"{type(action).__name__}; expected RebalanceAction, "
                "ScaleAction or None"
            )
        if not moves:
            return None
        return RebalanceCommand.moving(moves)

    def _send(
        self, partition: "Partition", command: RebalanceCommand, now: float
    ) -> None:
        port = partition.input_port(0)
        port.control.send(
            ControlMessage(
                ControlMessageKind.REBALANCE,
                Direction.DOWNSTREAM,
                payload=command,
                sender=self.SENDER,
                sent_at=now,
            )
        )
        self.runtime.notify_control(partition, at=now)

    # -- adaptive watermarks ---------------------------------------------------------

    def _adapt_queues(self) -> None:
        """Re-size bounded queues to track their observed drain rate.

        A queue's drain over the last tick is what its consumer actually
        absorbed; capacity beyond ``queue_headroom`` times that is dead
        buffer (it only adds latency before backpressure engages), and
        capacity below it starves the producer between ticks.  The low
        watermark follows capacity at the queue's built ratio.
        """
        cfg = self.config
        for op in self.runtime.plan:
            if op.finished:
                continue
            for edge in op.outputs:
                queue = edge.queue
                if not queue.bounded:
                    continue
                enqueued, occupancy = (
                    queue.elements_enqueued, queue.occupancy,
                )
                seen = self._queue_seen.get(queue.name)
                self._queue_seen[queue.name] = (
                    enqueued,
                    occupancy,
                    seen[2] if seen is not None else queue.capacity,
                )
                if seen is None:
                    continue
                drained = (enqueued - seen[0]) - (occupancy - seen[1])
                ceiling = (
                    seen[2] if cfg.max_capacity is None else cfg.max_capacity
                )
                target = max(
                    cfg.min_capacity,
                    min(ceiling, int(drained * cfg.queue_headroom)),
                )
                if target != queue.capacity:
                    queue.resize(target)
                    self.queue_resizes += 1
