"""PassThrough: a feedback-unaware pipeline stage with a fixed cost.

Models ingest stages that exist in any real engine but know nothing about
feedback -- NiagaraST's XML/SAXDOM parser is the canonical example (paper
section 5).  Because ``feedback_aware`` is False, relayed feedback stops
here and is ignored (the paper: "Feedback unaware operators ignore feedback
and are unable to further propagate it"), which is what puts a floor under
the savings of Experiment 2's scheme F3.
"""

from __future__ import annotations

from typing import Any

from repro.operators.base import Operator
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["PassThrough"]


class PassThrough(Operator):
    """Forward every element unchanged, charging ``tuple_cost`` apiece."""

    feedback_aware = False

    def __init__(self, name: str, schema: Schema, **kwargs: Any) -> None:
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self.emit(tup)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: forward the whole run in one bulk emission."""
        self.emit_many(batch)
