"""Symmetric hash join with punctuation-driven state purging.

The join implements the paper's (L, J, R) model (section 4.3, Table 2):
output schema = left-exclusive attributes, join attributes, right-exclusive
attributes.  Both inputs are hashed on the join key; each arriving tuple
probes the opposite table.

**Punctuation.** A punctuation on one input that constrains only join
attributes bounds the partners the *other* side can still meet: stored
tuples of the opposite table whose keys are covered can be purged (they
were waiting for arrivals that will never come).  An output punctuation for
a key region is emitted once both inputs have punctuated it.

**Outer joins.** ``how="left_outer"`` preserves every left tuple: when the
right side punctuates a key region, stored unmatched left tuples in that
region emit null-padded results.  Outer semantics restrict feedback
exploitation and propagation (see :meth:`SymmetricHashJoin.on_assumed`):
purging the non-preserved side is only correct for join-attribute-only
patterns, and propagation toward the null-padded side can invent padded
tuples -- exactly the kind of subtlety Definition 2 exists to prevent.

**Feedback (Table 2).** Exploitation is planner-driven: the safe per-input
patterns double as input-guard patterns and hash-table purge predicates;
when no safe mapping exists (the ``¬[l,*,r]`` row) the join guards its
output only.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Sequence

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.errors import PlanError
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["SymmetricHashJoin"]

JoinKey = tuple[Hashable, ...]


class _StoredTuple:
    """A tuple parked in a hash table, with outer-join bookkeeping."""

    __slots__ = ("tup", "matched")

    def __init__(self, tup: StreamTuple) -> None:
        self.tup = tup
        self.matched = False


class SymmetricHashJoin(Operator):
    """Equi-join of two streams with optional residual condition.

    Parameters
    ----------
    on:
        Pairs ``(left_attribute, right_attribute)`` defining the equi-join
        key.  The output carries the join attributes once, under their
        left-side names.
    condition:
        Optional residual predicate over ``(left_tuple, right_tuple)``;
        pairs failing it do not join (for a left-outer join the left tuple
        may still be null-padded when its key region completes).
    how:
        ``"inner"`` or ``"left_outer"``.
    """

    n_inputs = 2
    feedback_aware = True
    LEFT = 0
    RIGHT = 1

    def __init__(
        self,
        name: str,
        left_schema: Schema,
        right_schema: Schema,
        on: Sequence[tuple[str, str]],
        *,
        condition: Callable[[StreamTuple, StreamTuple], bool] | None = None,
        how: str = "inner",
        **kwargs: Any,
    ) -> None:
        if how not in ("inner", "left_outer"):
            raise PlanError(f"unsupported join type {how!r}")
        if not on:
            raise PlanError("join requires at least one attribute pair")
        mapping = SchemaMapping.for_join(left_schema, right_schema, on)
        super().__init__(
            name, mapping.output_schema, mapping=mapping, **kwargs
        )
        self.left_schema = left_schema
        self.right_schema = right_schema
        self.on = list(on)
        self.how = how
        self._condition = condition
        self._key_indices = (
            tuple(left_schema.index_of(l) for l, _ in on),
            tuple(right_schema.index_of(r) for _, r in on),
        )
        out = mapping.output_schema
        self._join_out_positions = tuple(out.index_of(l) for l, _ in on)
        left_join = {l for l, _ in on}
        right_join = {r for _, r in on}
        self._left_only = tuple(
            a.name for a in left_schema if a.name not in left_join
        )
        self._right_only = tuple(
            a.name for a in right_schema if a.name not in right_join
        )
        # Output value layout: left-exclusive, join, right-exclusive.
        self._left_out_indices = tuple(
            left_schema.index_of(n) for n in self._left_only
        )
        self._right_out_indices = tuple(
            right_schema.index_of(n) for n in self._right_only
        )
        self._tables: tuple[dict[JoinKey, list[_StoredTuple]], ...] = ({}, {})
        # Punctuation frontiers per input, as key patterns (join attrs only).
        self._key_frontiers: tuple[list[Pattern], list[Pattern]] = ([], [])
        # Right-side purge patterns that make null-padding unsafe.
        self._suppressed_key_patterns: list[Pattern] = []

    # ------------------------------------------------------------- durability

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["tables"] = tuple(dict(table) for table in self._tables)
        state["key_frontiers"] = tuple(list(f) for f in self._key_frontiers)
        state["suppressed_key_patterns"] = list(self._suppressed_key_patterns)
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        for table, saved in zip(self._tables, state["tables"]):
            table.clear()
            table.update(saved)
        for frontier, saved in zip(self._key_frontiers, state["key_frontiers"]):
            frontier[:] = saved
        self._suppressed_key_patterns[:] = state["suppressed_key_patterns"]

    # ------------------------------------------------------------- keys

    def _key_of(self, side: int, tup: StreamTuple) -> JoinKey:
        return tuple(tup.values[i] for i in self._key_indices[side])

    def _key_pattern_of(self, side: int, pattern: Pattern) -> Pattern | None:
        """Restrict an input-side pattern to the join key, if lossless.

        Returns the pattern over the join-key positions when the input
        pattern constrains *only* join attributes; None otherwise.
        """
        key_positions = set(self._key_indices[side])
        if not set(pattern.constrained_indices()) <= key_positions:
            return None
        return pattern.project(self._key_indices[side])

    # ------------------------------------------------------------- output

    def _join_values(self, left: StreamTuple, right: StreamTuple) -> StreamTuple:
        values = [left.values[i] for i in self._left_out_indices]
        values += [left.values[i] for i in self._key_indices[self.LEFT]]
        values += [right.values[i] for i in self._right_out_indices]
        return StreamTuple(self.output_schema, values)

    def _padded_values(self, left: StreamTuple) -> StreamTuple:
        values = [left.values[i] for i in self._left_out_indices]
        values += [left.values[i] for i in self._key_indices[self.LEFT]]
        values += [None] * len(self._right_out_indices)
        return StreamTuple(self.output_schema, values)

    # ------------------------------------------------------------- data

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        key = self._key_of(port_index, tup)
        other = 1 - port_index
        stored = _StoredTuple(tup)
        other_port = self.inputs[other]
        other_done = other_port is not None and other_port.done
        if not other_done:
            # Park the tuple only while the opposite input can still
            # deliver partners; storing after that is pure state leak.
            self._tables[port_index].setdefault(key, []).append(stored)
            self.metrics.grow_state()
        for partner in self._tables[other].get(key, ()):  # probe
            left_stored, right_stored = (
                (stored, partner) if port_index == self.LEFT
                else (partner, stored)
            )
            left, right = left_stored.tup, right_stored.tup
            if self._condition is not None and not self._condition(left, right):
                continue
            left_stored.matched = True
            right_stored.matched = True
            self.emit(self._join_values(left, right))
        if (
            other_done
            and port_index == self.LEFT
            and self.how == "left_outer"
        ):
            # The right side is complete: an unmatched left tuple will
            # never find a partner, so its padded result is due now.
            self._maybe_pad(stored, key)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: build/probe the run in one pass, bulk emission.

        Subclasses that override :meth:`on_tuple` (IMPATIENT JOIN wraps
        it with per-key feedback) keep element-wise dispatch unless they
        provide their own batch hook over :meth:`_join_batch`.
        """
        if type(self).on_tuple is not SymmetricHashJoin.on_tuple:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        self._join_batch(port_index, batch)

    def _join_batch(self, port_index: int, batch: list) -> None:
        """One build+probe pass over a run of same-port tuples.

        Element-wise equivalent to :meth:`on_tuple` -- results (joins and
        any due outer padding) accumulate in arrival order and ship via
        one :meth:`~repro.operators.base.Operator.emit_many`; hash-table
        mutations and ``matched`` flags are applied tuple by tuple, so a
        batch joining against itself behaves exactly as the per-element
        path does.
        """
        other = 1 - port_index
        other_port = self.inputs[other]
        other_done = other_port is not None and other_port.done
        table = self._tables[port_index]
        other_table = self._tables[other]
        condition = self._condition
        is_left = port_index == self.LEFT
        pad_due = other_done and is_left and self.how == "left_outer"
        out: list[StreamTuple] = []
        parked = 0
        for tup in batch:
            key = self._key_of(port_index, tup)
            stored = _StoredTuple(tup)
            if not other_done:
                table.setdefault(key, []).append(stored)
                parked += 1
            for partner in other_table.get(key, ()):
                left_stored, right_stored = (
                    (stored, partner) if is_left else (partner, stored)
                )
                left, right = left_stored.tup, right_stored.tup
                if condition is not None and not condition(left, right):
                    continue
                left_stored.matched = True
                right_stored.matched = True
                out.append(self._join_values(left, right))
            if pad_due:
                padded = self._padded_result(stored, key)
                if padded is not None:
                    out.append(padded)
        if parked:
            self.metrics.grow_state(parked)
        if out:
            self.emit_many(out)

    # ------------------------------------------------------------ punctuation

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        key_pattern = self._key_pattern_of(port_index, punct.pattern)
        if key_pattern is None:
            return  # not expressible over the join key; absorb
        other = 1 - port_index
        self._purge_waiting(other, key_pattern)
        self._advance_key_frontier(port_index, key_pattern)
        if self._key_covered(other, key_pattern):
            self._emit_key_punctuation(key_pattern)

    def _purge_waiting(self, side: int, key_pattern: Pattern) -> None:
        """Drop stored tuples of ``side`` whose partners can't arrive."""
        table = self._tables[side]
        dead_keys = [k for k in table if key_pattern.matches(k)]
        for k in dead_keys:
            if side == self.LEFT and self.how == "left_outer":
                for stored in table[k]:
                    self._maybe_pad(stored, k)
            self.metrics.shrink_state(len(table[k]))
            del table[k]

    def _padded_result(
        self, stored: _StoredTuple, key: JoinKey
    ) -> StreamTuple | None:
        """The null-padded result due for ``stored``, or None."""
        if stored.matched:
            return None
        if any(p.matches(key) for p in self._suppressed_key_patterns):
            return None  # feedback purged potential partners; padding unsafe
        return self._padded_values(stored.tup)

    def _maybe_pad(self, stored: _StoredTuple, key: JoinKey) -> None:
        padded = self._padded_result(stored, key)
        if padded is not None:
            self.emit(padded)

    def _advance_key_frontier(self, port_index: int, key_pattern: Pattern) -> None:
        frontier = self._key_frontiers[port_index]
        frontier[:] = [p for p in frontier if not key_pattern.subsumes(p)]
        frontier.append(key_pattern)

    def _key_covered(self, port_index: int, key_pattern: Pattern) -> bool:
        port = self.inputs[port_index]
        if port is not None and port.done:
            return True
        return any(
            seen.subsumes(key_pattern)
            for seen in self._key_frontiers[port_index]
        )

    def _emit_key_punctuation(self, key_pattern: Pattern) -> None:
        atoms = list(
            Pattern.all_wildcards(
                len(self.output_schema), schema=self.output_schema
            ).atoms
        )
        for atom, position in zip(key_pattern.atoms, self._join_out_positions):
            atoms[position] = atom
        self.emit_punctuation(
            Punctuation(
                Pattern(atoms, schema=self.output_schema), source=self.name
            )
        )

    def on_input_done(self, port_index: int) -> None:
        other = 1 - port_index
        if port_index == self.RIGHT and self.how == "left_outer":
            # No more right tuples at all: pad every unmatched left tuple.
            for key, entries in list(self._tables[self.LEFT].items()):
                for stored in entries:
                    self._maybe_pad(stored, key)
                self.metrics.shrink_state(len(entries))
                del self._tables[self.LEFT][key]
        # Stored tuples on the other side were waiting for this input.
        if self._tables[other]:
            total = sum(len(v) for v in self._tables[other].values())
            self.metrics.shrink_state(total)
            self._tables[other].clear()

    # ------------------------------------------------------------- feedback

    def _outer_safe(self, plan_input: int, pattern: Pattern) -> bool:
        """For outer joins, is exploiting/propagating toward this input safe?

        Purging or suppressing the null-padded (right) side is only safe
        when the feedback constrains join attributes alone; otherwise
        missing partners would turn into invented padded tuples or
        wrongly-suppressed padded tuples.
        """
        if self.how == "inner":
            return True
        if plan_input == self.LEFT:
            return True
        constrained = {
            self.output_schema[i].name
            for i in pattern.constrained_indices()
        }
        join_names = {l for l, _ in self.on}
        return constrained <= join_names

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        plan = self._planner.plan(feedback.pattern)
        actions: list[ExploitAction] = []
        usable = {
            idx: pat
            for idx, pat in plan.per_input.items()
            if self._outer_safe(idx, feedback.pattern)
        }
        if not usable:
            self.output_guards.install(
                feedback.pattern, origin=feedback, at=self.now()
            )
            return [ExploitAction.GUARD_OUTPUT]
        for idx, pattern in usable.items():
            self.input_port(idx).guards.install(
                pattern, origin=feedback, at=self.now()
            )
            purged = self._purge_table_matching(idx, pattern)
            if purged:
                actions.append(ExploitAction.PURGE_STATE)
            if idx == self.RIGHT and self.how == "left_outer":
                key_pattern = self._key_pattern_of(self.RIGHT, pattern)
                if key_pattern is not None:
                    self._suppressed_key_patterns.append(key_pattern)
        actions.append(ExploitAction.GUARD_INPUT)
        # Late bloomers on unguarded paths are still caught at the output.
        self.output_guards.install(
            feedback.pattern, origin=feedback, at=self.now()
        )
        actions.append(ExploitAction.GUARD_OUTPUT)
        return actions

    def _purge_table_matching(self, side: int, pattern: Pattern) -> int:
        """Purge stored tuples matching an input-schema pattern."""
        table = self._tables[side]
        purged = 0
        for key in list(table):
            entries = table[key]
            keep = [s for s in entries if not pattern.matches(s.tup)]
            purged += len(entries) - len(keep)
            if keep:
                table[key] = keep
            else:
                del table[key]
        if purged:
            self.metrics.shrink_state(purged, purged=True)
        return purged

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        relayed = super().relay_feedback(feedback)
        if self.how == "inner":
            return relayed
        return {
            idx: fb
            for idx, fb in relayed.items()
            if self._outer_safe(idx, feedback.pattern)
        }
