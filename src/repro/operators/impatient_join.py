"""IMPATIENT JOIN: desired-feedback production for eager results.

Section 3.4's illustration of desired punctuation: joining sparse vehicle
data with dense sensor data, the join is "eager to produce results" -- as
soon as it holds vehicle data for (period 7, segment 3) it tells the
sensor input ``?[7, 3, *]``: *prioritise* producing tuples for that key,
because the join can turn them into output immediately.

Desired feedback never changes the result, only its production time and
order; receiving operators that honour it (see
:class:`~repro.operators.buffer.PriorityBuffer`) release matching tuples
ahead of others.
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.operators.join import SymmetricHashJoin
from repro.punctuation.atoms import Equals, WILDCARD
from repro.punctuation.patterns import Pattern
from repro.stream.tuples import StreamTuple

__all__ = ["ImpatientJoin"]


class ImpatientJoin(SymmetricHashJoin):
    """Join that requests prioritised delivery of joinable subsets.

    ``eager_input`` is the sparse side (the paper's vehicle stream): the
    first arrival of each distinct join key there triggers desired
    feedback to the opposite input, at most once per key.
    """

    def __init__(
        self, *args: Any, eager_input: int = 0, **kwargs: Any
    ) -> None:
        super().__init__(*args, **kwargs)
        self.eager_input = eager_input
        self._requested_keys: set[tuple] = set()
        self.desired_sent = 0

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["requested_keys"] = set(self._requested_keys)
        state["desired_sent"] = self.desired_sent
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._requested_keys = set(state["requested_keys"])
        self.desired_sent = state["desired_sent"]

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        if port_index == self.eager_input:
            key = self._key_of(port_index, tup)
            if key not in self._requested_keys:
                self._requested_keys.add(key)
                self._request_priority(key)
        super().on_tuple(port_index, tup)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: request new keys for the run, then join it in bulk.

        Desired feedback for every fresh key in the run is issued before
        the run is joined (rather than interleaved per tuple); desired
        feedback never changes the result -- only production timing -- so
        this stays element-wise equivalent in content while keeping the
        parent's :meth:`~repro.operators.join.SymmetricHashJoin.
        _join_batch` fast path.
        """
        if type(self).on_tuple is not ImpatientJoin.on_tuple:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        if port_index == self.eager_input:
            for tup in batch:
                key = self._key_of(port_index, tup)
                if key not in self._requested_keys:
                    self._requested_keys.add(key)
                    self._request_priority(key)
        self._join_batch(port_index, batch)

    def _request_priority(self, key: tuple) -> None:
        """Send ``?[key...]`` to the opposite (dense) input."""
        other = 1 - self.eager_input
        other_schema = (
            self.right_schema if other == self.RIGHT else self.left_schema
        )
        atoms = [WILDCARD] * len(other_schema)
        for value, position in zip(key, self._key_indices[other]):
            atoms[position] = WILDCARD if value is None else Equals(value)
        pattern = Pattern(atoms, schema=other_schema)
        if pattern.is_all_wildcard:
            return
        self.desired_sent += 1
        self.produce_feedback(
            FeedbackPunctuation.desired(
                pattern, issuer=self.name, issued_at=self.now()
            ),
            input_indices=(other,),
        )
