"""UNION: merge same-schema streams, aligning punctuation across inputs.

A punctuation may only be forwarded once the asserted subset is complete on
**every** input -- otherwise a late tuple from another branch would violate
the emitted punctuation.  UNION therefore keeps a per-input *frontier* of
punctuation patterns and forwards a pattern when all other inputs have
declared a covering pattern.

Feedback relays to all inputs: every output attribute originates exactly in
each input, so the identity mapping is safe on both sides.
"""

from __future__ import annotations

from typing import Any

from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import AttributeOrigin, Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Union"]


def _union_mapping(schema: Schema, arity: int) -> SchemaMapping:
    return SchemaMapping(
        schema,
        tuple(schema for _ in range(arity)),
        {
            attr.name: tuple(
                AttributeOrigin(i, attr.name, exact=True)
                for i in range(arity)
            )
            for attr in schema
        },
    )


class Union(Operator):
    """Interleave ``arity`` same-schema inputs into one output stream."""

    feedback_aware = True

    def __init__(
        self, name: str, schema: Schema, *, arity: int = 2, **kwargs: Any
    ) -> None:
        self.n_inputs = arity
        super().__init__(
            name, schema, mapping=_union_mapping(schema, arity), **kwargs
        )
        self._frontiers: list[list[Pattern]] = [[] for _ in range(arity)]

    # -- data ---------------------------------------------------------------

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self.emit(tup)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: interleaving is per page, so forward the run in bulk.

        Punctuation never reaches this hook (the page walk dispatches it
        through :meth:`on_punctuation`), so frontier bookkeeping is
        untouched.  Subclasses with their own per-tuple semantics (PACE's
        lateness policy) fall back to element-wise dispatch.
        """
        if type(self).on_tuple is not Union.on_tuple:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        self.emit_many(batch)

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        self._advance_frontier(port_index, punct.pattern)
        if self._covered_everywhere(punct.pattern, exclude=port_index):
            self.emit_punctuation(punct)

    def on_input_done(self, port_index: int) -> None:
        """A closed input covers everything: re-check held punctuations."""
        everything = Pattern.all_wildcards(
            len(self.output_schema), schema=self.output_schema
        )
        self._advance_frontier(port_index, everything)

    # -- durability ---------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["frontiers"] = [list(f) for f in self._frontiers]
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        for frontier, saved in zip(self._frontiers, state["frontiers"]):
            frontier[:] = saved

    # -- frontier bookkeeping ---------------------------------------------------

    def _advance_frontier(self, port_index: int, pattern: Pattern) -> None:
        frontier = self._frontiers[port_index]
        frontier[:] = [p for p in frontier if not pattern.subsumes(p)]
        frontier.append(pattern)

    def _covered_everywhere(self, pattern: Pattern, *, exclude: int) -> bool:
        for index, frontier in enumerate(self._frontiers):
            if index == exclude:
                continue
            port = self.inputs[index]
            if port is not None and port.done:
                continue
            if not any(seen.subsumes(pattern) for seen in frontier):
                return False
        return True
