"""IMPUTE: expensive repair of dirty tuples via archival lookups.

Example 3 / Experiment 1: sensors intermittently report null values; the
dirty branch of the stream is routed through IMPUTE, which "uses an
expensive method to replace the missing values with acceptable estimates
... For each tuple that requires imputation, one database query is issued".

The archival database of the paper's testbed is simulated by
:class:`ArchiveDB`: an in-memory store of historical means keyed by a
configurable key function, with a fixed virtual cost per query.  The
substitution preserves what matters for the experiment -- one expensive
lookup per dirty tuple, orders of magnitude above the clean path's cost.

IMPUTE is the canonical feedback *exploiter*: on assumed feedback it
installs an input guard, so already-late tuples sitting in its backlog are
discarded at guard-check cost instead of full lookup cost, and it relays
the feedback further upstream (identity mapping).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["ArchiveDB", "Impute"]


class ArchiveDB:
    """A simulated archival store of historical observations.

    ``load`` ingests historical tuples; ``query`` returns the historical
    mean for the key of a probe tuple (or a global default when the key was
    never seen) and counts the lookup.  The per-query virtual cost is a
    property of the *operator* (IMPUTE charges it through its cost model);
    the archive only provides values and statistics.
    """

    def __init__(
        self,
        key_fn: Callable[[StreamTuple], Hashable],
        value_attribute: str,
        *,
        default: float = 0.0,
    ) -> None:
        self._key_fn = key_fn
        self._value_attribute = value_attribute
        self._default = default
        self._sums: dict[Hashable, float] = {}
        self._counts: dict[Hashable, int] = {}
        self.queries = 0

    def load(self, history: list[StreamTuple]) -> None:
        """Ingest historical tuples (non-null values only)."""
        for tup in history:
            value = tup[self._value_attribute]
            if value is None:
                continue
            key = self._key_fn(tup)
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._counts[key] = self._counts.get(key, 0) + 1

    def query(self, tup: StreamTuple) -> float:
        """One archival lookup: the historical mean for the tuple's key."""
        self.queries += 1
        key = self._key_fn(tup)
        count = self._counts.get(key, 0)
        if count == 0:
            return self._default
        return self._sums[key] / count

    def __len__(self) -> int:
        return len(self._counts)


class Impute(Operator):
    """Replace missing values with archival estimates, at a price.

    ``is_dirty`` decides whether a tuple needs repair (default: the value
    attribute is None).  Dirty tuples cost ``lookup_cost`` virtual seconds
    each; clean tuples pass through at ``tuple_cost``.
    """

    feedback_aware = True

    def __init__(
        self,
        name: str,
        schema: Schema,
        archive: ArchiveDB,
        *,
        value_attribute: str,
        lookup_cost: float,
        is_dirty: Callable[[StreamTuple], bool] | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        self.archive = archive
        self._value_attribute = value_attribute
        self.lookup_cost = float(lookup_cost)
        self._is_dirty = is_dirty or (
            lambda tup: tup[value_attribute] is None
        )
        self.imputed_count = 0

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["imputed_count"] = self.imputed_count
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.imputed_count = state["imputed_count"]

    def cost_of(self, element: Any) -> float:
        if element.is_punctuation:
            return self.punctuation_cost
        if self._is_dirty(element):
            return self.lookup_cost
        return self.tuple_cost

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        if not self._is_dirty(tup):
            self.emit(tup)
            return
        estimate = self.archive.query(tup)
        self.imputed_count += 1
        self.emit(tup.replace(**{self._value_attribute: estimate}))

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Guard the input: late tuples die at guard cost, not lookup cost.

        The pattern arrives in output-schema terms; IMPUTE's mapping is the
        identity, so it doubles as the input-guard pattern.  Backlogged
        tuples (pages queued but not yet processed) are purged implicitly:
        the guard intercepts them at dequeue time before any lookup.
        """
        self.input_port(0).guards.install(
            feedback.pattern, origin=feedback, at=self.now()
        )
        return [ExploitAction.GUARD_INPUT, ExploitAction.PURGE_STATE]
