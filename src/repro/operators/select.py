"""Selection: stateless filtering, the simplest feedback exploiter.

The paper (section 4.3): *"SELECT, for example, maintains no internal
state, and assumed punctuation can simply be added to its select
condition."*  Here that is an input guard -- matching tuples are dropped
before the (possibly expensive) predicate runs -- plus the identity-mapped
relay upstream.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Select", "QualityFilter"]


class Select(Operator):
    """Emit tuples satisfying a predicate; drop the rest.

    ``predicate`` is either a callable on :class:`StreamTuple` or a
    :class:`Pattern` (kept tuples are those the pattern matches).
    Punctuation passes through unchanged: whatever subset is complete on
    the input is complete on the filtered output too.
    """

    feedback_aware = True

    def __init__(
        self,
        name: str,
        schema: Schema,
        predicate: Callable[[StreamTuple], bool] | Pattern,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        if isinstance(predicate, Pattern):
            #: The declarative form, when given: the optimizer's guard
            #: pushdown can only reason about pattern predicates.
            self.pattern: Pattern | None = predicate
            self._predicate: Callable[[StreamTuple], bool] = predicate.matches
        else:
            self.pattern = None
            self._predicate = predicate

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        if self._predicate(tup):
            self.emit(tup)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: one predicate pass, one bulk emission."""
        predicate = self._predicate
        self.emit_many([t for t in batch if predicate(t)])

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Add the punctuation to the select condition (an input guard)."""
        self.input_port(0).guards.install(
            feedback.pattern, origin=feedback, at=self.now()
        )
        return [ExploitAction.GUARD_INPUT]


class QualityFilter(Select):
    """A data-quality filter: a Select with a non-trivial per-tuple cost.

    Experiment 2's plan has "a data quality filter at the bottom of the
    query" (σQ in Figure 4(b)); scheme F3's extra savings come from
    propagating feedback down to this operator so the validation work
    itself is skipped.  The validation is modelled as a predicate plus a
    configurable virtual cost per inspected tuple.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        predicate: Callable[[StreamTuple], bool] | Pattern,
        *,
        tuple_cost: float,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name, schema, predicate, tuple_cost=tuple_cost, **kwargs
        )
