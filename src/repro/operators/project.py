"""Projection: reorder / drop attributes, with exact lineage for relaying.

Feedback arriving at a projection is phrased over the projected schema;
every kept attribute has an exact origin in the input, so the planner can
always map the pattern back (dropped attributes are simply unconstrained
upstream -- which *widens* nothing, because they were unconstrained in the
feedback too).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.stream.schema import AttributeOrigin, Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Project"]


class Project(Operator):
    """Emit each input tuple projected onto ``attributes`` (in order)."""

    feedback_aware = True

    def __init__(
        self,
        name: str,
        input_schema: Schema,
        attributes: Sequence[str],
        **kwargs: Any,
    ) -> None:
        output_schema = input_schema.project(attributes)
        mapping = SchemaMapping(
            output_schema,
            (input_schema,),
            {
                output_schema[i].name: (
                    AttributeOrigin(0, attributes[i], exact=True),
                )
                for i in range(len(attributes))
            },
        )
        super().__init__(name, output_schema, mapping=mapping, **kwargs)
        self.input_schema = input_schema
        self._attributes = list(attributes)
        self._indices = input_schema.indices_of(attributes)

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        values = [tup.values[i] for i in self._indices]
        self.emit(StreamTuple(self.output_schema, values))

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: project the whole run, then one bulk emission."""
        schema = self.output_schema
        indices = self._indices
        self.emit_many([
            StreamTuple(schema, [t.values[i] for i in indices])
            for t in batch
        ])

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Project the punctuation pattern; forward only when lossless.

        A punctuation that constrains a dropped attribute cannot be
        projected soundly (the projected pattern would cover *more* output
        tuples than the original asserts complete), so it is absorbed.
        """
        constrained = set(punct.pattern.constrained_indices())
        kept = set(self._indices)
        if constrained <= kept:
            projected = punct.pattern.project(
                self._indices, schema=self.output_schema
            )
            self.emit_punctuation(Punctuation(projected, source=self.name))

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Guard the input using the back-mapped pattern (stateless)."""
        relayable = self.relay_feedback(feedback)
        if 0 in relayable:
            self.input_port(0).guards.install(
                relayable[0].pattern, origin=feedback, at=self.now()
            )
            return [ExploitAction.GUARD_INPUT]
        return super().on_assumed(feedback)
