"""Stream sources: replayed, generated, punctuated and async inputs.

Sources yield ``(arrival_time, element)`` pairs that the engine replays at
those virtual times.  Because :class:`~repro.operators.base.SourceOperator`
is feedback-aware, assumed feedback that propagates all the way to a source
suppresses tuples before they enter the plan -- the best case of the
paper's "avoidance of unnecessary work".

Sources are also where backpressure terminates: when a bounded downstream
queue signals *pause*, the engine stops replaying the source's timeline
(the simulator stashes the in-flight event, the threaded runtime sleeps
the source thread) until the matching *resume* arrives, so input is
admitted no faster than the plan can absorb it.  Sources need no code for
this -- the engines honour it on their behalf (see
:mod:`repro.engine.runtime`).
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterable, Callable, Iterable, Iterator, Sequence

from repro.errors import WorkloadError
from repro.operators.base import SourceOperator
from repro.punctuation.schemes import ProgressPunctuator
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = [
    "AsyncIterableSource",
    "GeneratorSource",
    "ListSource",
    "PunctuatedSource",
]


class ListSource(SourceOperator):
    """Replays a pre-built list of ``(arrival_time, element)`` pairs.

    Arrival times must be non-decreasing.  The element may be a
    :class:`StreamTuple` or an embedded :class:`Punctuation`.
    """

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        timeline: Sequence[tuple[float, Any]],
        **kwargs: Any,
    ) -> None:
        super().__init__(name, output_schema, **kwargs)
        previous = float("-inf")
        for arrival, _ in timeline:
            if arrival < previous:
                raise WorkloadError(
                    f"{name}: timeline arrival times must be non-decreasing"
                )
            previous = arrival
        self._timeline = list(timeline)

    def events(self) -> Iterator[tuple[float, Any]]:
        return iter(self._timeline)


class GeneratorSource(SourceOperator):
    """Wraps any generator of ``(arrival_time, element)`` pairs.

    The factory is invoked lazily at engine start, so one source object can
    describe an arbitrarily long stream without materialising it.
    """

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        factory: Callable[[], Iterable[tuple[float, Any]]],
        **kwargs: Any,
    ) -> None:
        super().__init__(name, output_schema, **kwargs)
        self._factory = factory

    def events(self) -> Iterator[tuple[float, Any]]:
        return iter(self._factory())


class AsyncIterableSource(SourceOperator):
    """Wraps an async iterable of ``(arrival_time, element)`` pairs.

    The async-native ingestion adapter for network-shaped inputs
    (websockets, HTTP feeds, message brokers): the factory is invoked
    lazily at engine start and must return an async iterable (typically
    an async generator).  On the asyncio engine
    (:class:`~repro.engine.async_engine.AsyncioEngine`) the iterable is
    consumed through :meth:`aevents` natively -- each ``await`` between
    elements parks only this source's coroutine, so thousands of slow
    feeds share one event loop.

    The synchronous :meth:`events` bridge keeps the source runnable on
    the simulator and the threaded runtime: it pumps a private event
    loop one element at a time.  That private loop cannot be nested
    inside an already-running one, so from async client code, drive
    these sources with the asyncio engine.
    """

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        factory: Callable[[], AsyncIterable[tuple[float, Any]]],
        *,
        idle_flush: Callable[[], bool] | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, output_schema, **kwargs)
        if not callable(factory):
            raise WorkloadError(
                f"{name}: AsyncIterableSource takes a zero-argument "
                f"factory returning an async iterable, got {factory!r}"
            )
        if idle_flush is not None and not callable(idle_flush):
            raise WorkloadError(
                f"{name}: idle_flush must be a zero-argument callable, "
                f"got {idle_flush!r}"
            )
        self._factory = factory
        #: Latency hint for interactive feeds (``Flow.ingest``): when it
        #: reports the upstream buffer empty, the asyncio engine flushes
        #: this source's open output pages instead of letting a partial
        #: page wait for more input.  Pages still batch under sustained
        #: load -- the hint only fires when the feed goes quiet.
        self._idle_flush = idle_flush

    def wants_flush(self) -> bool:
        """True when open output pages should flush (feed is idle)."""
        return self._idle_flush is not None and self._idle_flush()

    def aevents(self) -> AsyncIterable[tuple[float, Any]]:
        """The async iterator of events (consumed by the asyncio engine)."""
        iterable = self._factory()
        if not hasattr(iterable, "__aiter__"):
            raise WorkloadError(
                f"{self.name}: factory returned {iterable!r}, which is "
                f"not an async iterable"
            )
        return iterable

    def events(self) -> Iterator[tuple[float, Any]]:
        """Synchronous bridge: pump the async iterable on a private loop."""
        loop = asyncio.new_event_loop()
        iterator = self.aevents().__aiter__()
        try:
            while True:
                try:
                    yield loop.run_until_complete(iterator.__anext__())
                except StopAsyncIteration:
                    break
        finally:
            # Runs on early abandonment too (GeneratorExit at the yield
            # when an engine aborts mid-stream): an async generator whose
            # cleanup awaits (``await ws.close()``) must get its aclose()
            # driven, or the connection leaks with "async generator
            # ignored GeneratorExit".
            aclose = getattr(iterator, "aclose", None)
            try:
                if aclose is not None:
                    loop.run_until_complete(aclose())
            finally:
                loop.close()


class PunctuatedSource(SourceOperator):
    """Replays tuples and interleaves progress punctuation automatically.

    Wraps a plain tuple timeline with a
    :class:`~repro.punctuation.schemes.ProgressPunctuator` on one attribute,
    emitting ``[... <= boundary ...]`` punctuation as the stream advances,
    plus a final all-covering punctuation at end of stream.  This is the
    standard NiagaraST-style input: data plus embedded progress markers.
    """

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        timeline: Sequence[tuple[float, StreamTuple]],
        *,
        punctuate_on: str,
        punctuation_interval: float,
        grace: float = 0.0,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, output_schema, **kwargs)
        self._timeline = list(timeline)
        self._punctuate_on = punctuate_on
        self._interval = punctuation_interval
        self._grace = grace

    def events(self) -> Iterator[tuple[float, Any]]:
        punctuator = ProgressPunctuator(
            self.output_schema,
            self._punctuate_on,
            self._interval,
            grace=self._grace,
            source=self.name,
        )
        last_arrival = 0.0
        for arrival, tup in self._timeline:
            last_arrival = arrival
            yield arrival, tup
            for punct in punctuator.observe(tup[self._punctuate_on]):
                yield arrival, punct
        yield last_arrival, punctuator.final()
