"""THRIFTY JOIN: adaptive feedback production from empty windows.

The paper's "Adaptive" feedback source (section 3.3): vehicle and sensor
streams joined on location over tumbling windows; when punctuation shows
that a window of the probe (vehicle) stream is **empty**, no sensor tuple
in that window can ever join, so THRIFTY JOIN sends assumed feedback to the
sensor input -- "antecedent operators in the sensor stream can choose to
stop producing tuples that would be part of the useless window."

The mechanism generalises the example: whenever an input designated as a
*probe* punctuates a join-key region for which its hash table holds **no**
tuples, feedback carrying that key region is issued to the opposite input.
Only valid for inner joins (an outer join must still emit the preserved
side of an empty window).
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.errors import PlanError
from repro.operators.join import SymmetricHashJoin
from repro.punctuation.atoms import WILDCARD
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern

__all__ = ["ThriftyJoin"]


class ThriftyJoin(SymmetricHashJoin):
    """Inner join that reports empty probe windows upstream.

    ``probe_inputs`` names the inputs whose empty punctuated regions
    trigger feedback to the opposite input (default: the left input, the
    paper's vehicle stream).
    """

    def __init__(
        self,
        *args: Any,
        probe_inputs: tuple[int, ...] = (0,),
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if self.how != "inner":
            raise PlanError(
                "ThriftyJoin requires an inner join: an outer join must "
                "still produce the preserved side of an empty window"
            )
        self.probe_inputs = probe_inputs
        self.empty_windows_detected = 0

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["empty_windows_detected"] = self.empty_windows_detected
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.empty_windows_detected = state["empty_windows_detected"]

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        if port_index in self.probe_inputs:
            key_pattern = self._key_pattern_of(port_index, punct.pattern)
            if key_pattern is not None and self._region_is_empty(
                port_index, key_pattern
            ):
                self._report_empty_region(port_index, key_pattern)
        super().on_punctuation(port_index, punct)

    def _region_is_empty(self, side: int, key_pattern: Pattern) -> bool:
        """True when the probe table holds no tuple in the key region."""
        return not any(
            key_pattern.matches(key) for key in self._tables[side]
        )

    def _report_empty_region(self, side: int, key_pattern: Pattern) -> None:
        """Issue assumed feedback for the region to the opposite input."""
        other = 1 - side
        other_schema = (
            self.right_schema if other == self.RIGHT else self.left_schema
        )
        atoms = [WILDCARD] * len(other_schema)
        for atom, position in zip(
            key_pattern.atoms, self._key_indices[other]
        ):
            atoms[position] = atom
        pattern = Pattern(atoms, schema=other_schema)
        if pattern.is_all_wildcard:
            return
        self.empty_windows_detected += 1
        feedback = FeedbackPunctuation.assumed(
            pattern, issuer=self.name, issued_at=self.now()
        )
        self.produce_feedback(feedback, input_indices=(other,))
        # The join itself can also skip work for the region immediately.
        self.input_port(other).guards.install(
            pattern, origin=feedback, at=self.now()
        )
