"""Operator library (system S4 in DESIGN.md).

Stateless operators (Select, Project, Duplicate, Union) and stateful ones
(PACE, Impute, the join family, windowed aggregates, PriorityBuffer) built
on the :class:`~repro.operators.base.Operator` framework with its guard,
punctuation and feedback machinery.  The shard boundary pair
(Partition / ShardMerge) turns a replicated subgraph into a key-partitioned
parallel region (see ``docs/sharding.md``).
"""

from repro.operators.aggregate import AggregateKind, WindowAggregate
from repro.operators.base import InputPort, Operator, OutputEdge, SourceOperator
from repro.operators.buffer import PriorityBuffer
from repro.operators.duplicate import Duplicate
from repro.operators.fused import FusedOperator
from repro.operators.impatient_join import ImpatientJoin
from repro.operators.impute import ArchiveDB, Impute
from repro.operators.join import SymmetricHashJoin
from repro.operators.map import Map
from repro.operators.pace import Pace
from repro.operators.partition import Partition, ShardMerge
from repro.operators.passthrough import PassThrough
from repro.operators.project import Project
from repro.operators.router import Router
from repro.operators.select import QualityFilter, Select
from repro.operators.sink import (
    AwaitableSink,
    CollectSink,
    OnDemandSink,
    PushSink,
)
from repro.operators.source import (
    AsyncIterableSource,
    GeneratorSource,
    ListSource,
    PunctuatedSource,
)
from repro.operators.thrifty_join import ThriftyJoin
from repro.operators.union import Union

__all__ = [
    "AggregateKind",
    "ArchiveDB",
    "AsyncIterableSource",
    "AwaitableSink",
    "CollectSink",
    "Duplicate",
    "FusedOperator",
    "GeneratorSource",
    "ImpatientJoin",
    "Impute",
    "InputPort",
    "ListSource",
    "Map",
    "OnDemandSink",
    "Operator",
    "OutputEdge",
    "Pace",
    "Partition",
    "PassThrough",
    "PriorityBuffer",
    "Project",
    "PunctuatedSource",
    "PushSink",
    "QualityFilter",
    "Router",
    "Select",
    "ShardMerge",
    "SourceOperator",
    "SymmetricHashJoin",
    "ThriftyJoin",
    "Union",
    "WindowAggregate",
]
