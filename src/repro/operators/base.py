"""Operator framework: ports, control handling, guards, feedback hooks.

Operators follow NiagaraST's execution model (paper section 5): each
operator owns input data queues (pages of tuples and embedded punctuation)
paired with bidirectional control channels.  Control is out-of-band and high
priority -- engines always drain an operator's pending control messages
before handing it data pages.

The feedback roles of section 3 map onto this class as follows:

* **exploiter** -- :meth:`receive_feedback` dispatches to the per-intent
  hooks (:meth:`on_assumed`, :meth:`on_desired`, :meth:`on_demanded`).  The
  default assumed-response installs an **output guard**, which is correct
  for every operator (it yields exactly ``SR - subset(SR, f)`` on the
  guarded output, the maximum exploitation permitted by Definition 1).
  Stateful operators override the hook to add input guards and state
  purging where their semantics allow (Tables 1-2).
* **relayer** -- :meth:`relay_feedback` uses the operator's
  :class:`~repro.stream.schema.SchemaMapping` and the safe-propagation
  planner (Definition 2).  Operators with state-dependent propagation
  (e.g. COUNT under ``¬[*, >=a]``) override it.
* **producer** -- operators call :meth:`produce_feedback` when they discover
  an opportunity (PACE's divergence bound, THRIFTY JOIN's empty windows).

Feedback-unaware operators (``feedback_aware = False``, the default) ignore
feedback and cannot relay it -- exactly the paper's incremental-deployment
story (section 5, "Feedback Support").
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.feedback import (
    CheckpointPunctuation,
    FeedbackIntent,
    FeedbackPunctuation,
    RebalancePunctuation,
)
from repro.core.guards import GuardSet
from repro.core.propagation import PropagationPlanner
from repro.core.roles import ExploitAction, FeedbackLog
from repro.engine.metrics import OperatorMetrics, OutputLog
from repro.errors import FeedbackError, PlanError
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.control import (
    ControlChannel,
    ControlMessage,
    ControlMessageKind,
    Direction,
)
from repro.stream.pages import Page
from repro.stream.queues import DataQueue
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["InputPort", "OutputEdge", "Operator", "SourceOperator"]


class InputPort:
    """One input of an operator: data queue, control channel, guards."""

    __slots__ = ("index", "queue", "control", "producer", "guards", "done")

    def __init__(
        self,
        index: int,
        queue: DataQueue,
        control: ControlChannel,
        producer: "Operator | None",
    ) -> None:
        self.index = index
        self.queue = queue
        self.control = control
        self.producer = producer
        self.guards = GuardSet(f"input[{index}]")
        self.done = False  # producer closed and queue drained

    def __repr__(self) -> str:
        who = self.producer.name if self.producer else "<external>"
        return f"InputPort({self.index}, from={who}, done={self.done})"


class OutputEdge:
    """One downstream connection: data queue, control channel, consumer."""

    __slots__ = ("queue", "control", "consumer", "consumer_port")

    def __init__(
        self,
        queue: DataQueue,
        control: ControlChannel,
        consumer: "Operator",
        consumer_port: int,
    ) -> None:
        self.queue = queue
        self.control = control
        self.consumer = consumer
        self.consumer_port = consumer_port

    def __repr__(self) -> str:
        return f"OutputEdge(to={self.consumer.name}[{self.consumer_port}])"


class _DetachedRuntime:
    """Placeholder runtime so operators are usable before plan wiring.

    Unit tests drive operators directly through this stub; the engines
    replace it at start-up with a live runtime exposing the same surface.
    """

    def __init__(self) -> None:
        self.feedback_log = FeedbackLog()
        self.output_log = OutputLog()

    def now(self) -> float:
        return 0.0

    def notify_control(
        self, operator: "Operator", at: float | None = None
    ) -> None:
        """A control message was queued for ``operator``; engines schedule it."""

    def notify_data(self, operator: "Operator") -> None:
        """New data is ready for ``operator``; engines schedule it."""


class Operator(abc.ABC):
    """Base class for every query operator.

    Subclasses must implement :meth:`on_tuple` and may override
    :meth:`on_punctuation` (default: forward), the feedback hooks, and the
    lifecycle hooks :meth:`on_start`, :meth:`on_input_done`,
    :meth:`on_finish`.

    Cost model: ``tuple_cost`` / ``punctuation_cost`` / ``control_cost``
    are virtual seconds charged by the simulator per element or message;
    :meth:`cost_of` may be overridden for data-dependent costs (IMPUTE's
    archival lookups).
    """

    #: Number of input streams (0 for sources, 2 for joins).
    n_inputs: int = 1
    #: Whether this operator understands feedback punctuation at all.
    feedback_aware: bool = False
    #: Whether assumed feedback is forwarded upstream when safely mappable.
    relay_enabled: bool = True

    def __init__(
        self,
        name: str,
        output_schema: Schema | None,
        *,
        mapping: SchemaMapping | None = None,
        tuple_cost: float = 0.0,
        punctuation_cost: float = 0.0,
        control_cost: float = 0.0,
    ) -> None:
        if not name:
            raise PlanError("operator requires a non-empty name")
        self.name = name
        self.output_schema = output_schema
        self.mapping = mapping
        self.tuple_cost = float(tuple_cost)
        self.punctuation_cost = float(punctuation_cost)
        self.control_cost = float(control_cost)
        self.inputs: list[InputPort | None] = [None] * self.n_inputs
        self.outputs: list[OutputEdge] = []
        self.output_guards = GuardSet("output")
        self.metrics = OperatorMetrics()
        self.runtime: Any = _DetachedRuntime()
        self.finished = False
        self._planner: PropagationPlanner | None = (
            PropagationPlanner(mapping) if mapping is not None else None
        )

    # ------------------------------------------------------------------ wiring

    def attach_input(
        self,
        port_index: int,
        queue: DataQueue,
        control: ControlChannel,
        producer: "Operator | None",
    ) -> InputPort:
        if not 0 <= port_index < self.n_inputs:
            raise PlanError(
                f"{self.name}: input port {port_index} out of range "
                f"(operator has {self.n_inputs} inputs)"
            )
        if self.inputs[port_index] is not None:
            raise PlanError(
                f"{self.name}: input port {port_index} already connected"
            )
        port = InputPort(port_index, queue, control, producer)
        self.inputs[port_index] = port
        return port

    def attach_output(self, edge: OutputEdge) -> None:
        self.outputs.append(edge)

    def input_port(self, index: int) -> InputPort:
        port = self.inputs[index]
        if port is None:
            raise PlanError(f"{self.name}: input port {index} not connected")
        return port

    @property
    def connected(self) -> bool:
        return all(p is not None for p in self.inputs)

    # ------------------------------------------------------------------ time

    _now: float = 0.0

    def now(self) -> float:
        """Virtual (or wall) time at the current processing step."""
        return self._now

    def set_now(self, timestamp: float) -> None:
        """Engines stamp the operator's clock before each callback."""
        self._now = timestamp

    # ---------------------------------------------------------------- costs

    #: Cost of evaluating input guards against a tuple that gets dropped.
    #: Kept near zero: guard evaluation is a pattern match, vastly cheaper
    #: than the work it avoids (that asymmetry *is* the savings mechanism).
    guard_check_cost: float = 0.0

    def cost_of(self, element: Any) -> float:
        """Virtual processing cost of one stream element."""
        if element.is_punctuation:
            return self.punctuation_cost
        return self.tuple_cost

    def admission_cost(self, port_index: int, element: Any) -> float:
        """Cost the engine charges for delivering one element.

        Guard-dropped tuples cost ``guard_check_cost`` instead of the full
        processing cost -- dropping a tuple at the guard is the whole point
        of exploiting assumed feedback.
        """
        if element.is_punctuation:
            return self.punctuation_cost
        port = self.inputs[port_index]
        if port is not None and port.guards.would_block(element):
            return self.guard_check_cost
        return self.cost_of(element)

    @property
    def needs_metering(self) -> bool:
        """Whether engines must charge this operator's cost per element.

        False (the common case: every cost knob is zero and no cost hook
        is overridden) lets a virtual-time engine hand whole pages to
        :meth:`process_page` without a per-element meter -- the clock
        cannot move during the page, so batch dispatch is timing-exact.
        """
        return (
            self.tuple_cost != 0.0
            or self.punctuation_cost != 0.0
            or self.guard_check_cost != 0.0
            or type(self).cost_of is not Operator.cost_of
            or type(self).admission_cost is not Operator.admission_cost
        )

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        """Called once before any element is delivered."""

    def on_input_done(self, port_index: int) -> None:
        """Called when one input is closed and fully drained."""

    def on_finish(self) -> None:
        """Called when all inputs are done; emit any final results here."""

    def on_run_aborted(self, error: BaseException) -> None:
        """Called when the run fails before this operator finished.

        Engines invoke this on every unfinished operator when a run
        raises (watchdog timeout, action error, operator exception), so
        operators holding external parties -- e.g. client coroutines
        awaiting an :class:`~repro.operators.sink.AwaitableSink` -- can
        fail them instead of leaving them parked forever.  Default: no-op.
        """

    def snapshot_state(self) -> dict[str, Any]:
        """Client-visible state to ship back from a worker process.

        The multiprocess engine runs each operator in one worker; after
        the run it merges every worker's snapshots onto the coordinator's
        plan copy (via :meth:`restore_state`) so call sites that inspect
        operators on the returned ``RunResult`` -- a sink's ``results``,
        a merge's region counters -- see the worker's final state.
        Operators with such state override both hooks; the default is
        stateless.  Entries must be picklable.
        """
        return {}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Apply a :meth:`snapshot_state` dict onto this instance."""

    # --------------------------------------------------------- data handling

    def process_element(self, port_index: int, element: Any) -> None:
        """Entry point for one stream element on one input.

        Engines deliver whole pages through :meth:`process_page`; this
        remains the per-element path for harnesses and direct tests.
        """
        heads = self._ckpt_heads
        if heads and port_index in heads:
            # Port blocked by checkpoint alignment: everything behind the
            # pending marker belongs to a later epoch and must wait.
            self._ckpt_blocked.setdefault(port_index, deque()).append(
                element
            )
            return
        if isinstance(element, CheckpointPunctuation):
            self._on_checkpoint_marker(port_index, element)
            return
        if isinstance(element, RebalancePunctuation):
            self._on_rebalance_marker(port_index, element)
            return
        port = self.input_port(port_index)
        if element.is_punctuation:
            self.metrics.punctuations_in += 1
            released = port.guards.expire_with(element)
            if released:
                self.on_guards_expired(port_index, element, released)
            self.on_punctuation(port_index, element)
            return
        self.metrics.tuples_in += 1
        if port.guards.blocks(element):
            self.metrics.input_guard_drops += 1
            self.on_guarded_drop(port_index, element)
            return
        self.on_tuple(port_index, element)

    def process_page(
        self,
        port_index: int,
        page: Iterable[Any],
        *,
        meter: Callable[[Any], None] | None = None,
    ) -> None:
        """Engine entry point for one page of elements on one input.

        One pass over the page: guard-dropped tuples are filtered up
        front, runs of surviving tuples between punctuations are handed to
        :meth:`on_page` in bulk, and punctuations get exactly the
        :meth:`process_element` treatment (guard expiry, then
        :meth:`on_punctuation`).

        ``meter`` is an engine-supplied per-element accounting hook (cost
        charging, clock stamping).  When present, elements are dispatched
        one at a time so emission times interleave with the metered clock
        exactly as the per-element path does; when absent, the batch fast
        path applies.
        """
        port = self.input_port(port_index)
        guards = port.guards
        metrics = self.metrics
        metrics.pages_in += 1

        if meter is not None:
            for element in page:
                meter(element)
                self.process_element(port_index, element)
            return

        elements = page.elements if isinstance(page, Page) else list(page)
        heads = self._ckpt_heads
        if heads and port_index in heads:
            # Port blocked by checkpoint alignment: stash the whole page
            # (raw; metrics are charged when the stash drains).
            self._ckpt_blocked.setdefault(port_index, deque()).extend(
                elements
            )
            return
        metrics.pages_batched += 1
        # Zero-copy fast path: a punctuation-free page hands its own
        # element list straight to the run dispatcher -- no re-buffering.
        # (Queue-built pages can only carry a punctuation at the tail,
        # but hand-built and codec-decoded pages may interleave them, so
        # the split below stays fully general.  Checkpoint markers are
        # punctuation, so they can never slip through this fast path.)
        if not any(e.is_punctuation for e in elements):
            if elements:
                self._dispatch_batch(port_index, guards, elements)
            return
        batch: list = []
        for position, element in enumerate(elements):
            if element.is_punctuation:
                if batch:
                    self._dispatch_batch(port_index, guards, batch)
                    batch = []
                if isinstance(element, CheckpointPunctuation):
                    self._on_checkpoint_marker(port_index, element)
                    heads = self._ckpt_heads
                    if heads and port_index in heads:
                        # The marker blocked this port mid-page: the
                        # page's remainder waits behind it in the stash.
                        self._ckpt_blocked.setdefault(
                            port_index, deque()
                        ).extend(elements[position + 1:])
                        return
                    continue
                if isinstance(element, RebalancePunctuation):
                    # Rebalance markers never block a port (lane members
                    # are single-input by eligibility), so no remainder
                    # stashing is needed here.
                    self._on_rebalance_marker(port_index, element)
                    continue
                metrics.punctuations_in += 1
                released = guards.expire_with(element)
                if released:
                    self.on_guards_expired(port_index, element, released)
                self.on_punctuation(port_index, element)
                continue
            batch.append(element)
        if batch:
            self._dispatch_batch(port_index, guards, batch)

    def _dispatch_batch(
        self, port_index: int, guards: GuardSet, batch: list
    ) -> None:
        """Guard-filter one run of data tuples and hand survivors to
        :meth:`on_page`.

        Guard evaluation is batched (:meth:`~repro.core.guards.GuardSet.
        filter_batch`): the constrained columns of each guard pattern are
        hoisted once per run instead of re-dispatching ``Pattern.matches``
        per element -- the single largest cost on guard-heavy chains.
        """
        metrics = self.metrics
        metrics.tuples_in += len(batch)
        if len(guards):
            kept, dropped = guards.filter_batch(batch)
            if dropped:
                metrics.input_guard_drops += len(dropped)
                for element in dropped:
                    self.on_guarded_drop(port_index, element)
        else:
            kept = batch
        if kept:
            self.on_page(port_index, kept)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch hook: process a run of guard-surviving data tuples.

        The default dispatches per element, which is correct for every
        operator; stateless operators override it with a native batch
        implementation (one pass, bulk emission) for throughput.
        Overrides must be element-wise equivalent to :meth:`on_tuple` --
        the page boundary carries no semantics.  ``batch`` may be the
        page's own element buffer (the zero-copy fast path): treat it as
        read-only.
        """
        for tup in batch:
            self.on_tuple(port_index, tup)

    @abc.abstractmethod
    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        """Process one data tuple."""

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Process one embedded punctuation.  Default: forward it.

        Stateless unary operators keep this default; stateful operators
        override it to close windows / purge state first.
        """
        self.emit_punctuation(punct)

    def on_guarded_drop(self, port_index: int, tup: StreamTuple) -> None:
        """Hook invoked when an input guard suppressed a tuple."""

    def on_guards_expired(
        self, port_index: int, punct: Punctuation, released: list
    ) -> None:
        """Hook invoked when punctuation released input guards."""

    # ------------------------------------------------- checkpoint alignment

    #: Chandy-Lamport alignment state for multi-input operators, lazily
    #: created on the first marker: ``_ckpt_heads`` maps a blocked input
    #: port to the marker waiting on it; ``_ckpt_blocked`` maps a port to
    #: the post-marker elements stashed behind that head.  ``None`` on
    #: single-input operators and whenever checkpointing is off.
    _ckpt_heads: "dict[int, CheckpointPunctuation] | None" = None
    _ckpt_blocked: "dict[int, deque] | None" = None

    def _on_checkpoint_marker(
        self, port_index: int, marker: CheckpointPunctuation
    ) -> None:
        """A checkpoint marker reached this operator on ``port_index``.

        Single-input operators complete the cut immediately.  Multi-input
        operators block the port (its marker becomes the *head*) until
        every other live port's marker arrives -- the aligned cut -- at
        which point :meth:`_ckpt_pump` snapshots and releases.  Elements
        the marker overtakes inside this operator (a partition's lane
        stash, a buffer's pending heap) need no alignment: they are part
        of the snapshot itself.
        """
        if self.n_inputs <= 1:
            self._ckpt_complete(marker)
            return
        if self._ckpt_heads is None:
            self._ckpt_heads = {}
            self._ckpt_blocked = {}
        self._ckpt_heads[port_index] = marker
        self._ckpt_pump()

    def _ckpt_pump(self) -> None:
        """Complete every checkpoint the current heads allow.

        Iterative: completing an epoch drains the released ports' stashes
        through :meth:`process_element`, which may surface the *next*
        epoch's marker and re-block -- so pump until alignment stalls.
        """
        heads = self._ckpt_heads
        blocked = self._ckpt_blocked
        while heads:
            live = [
                p for p in self.inputs if p is not None and not p.done
            ]
            if any(p.index not in heads for p in live):
                return
            epoch = min(m.epoch for m in heads.values())
            marker = next(
                m for m in heads.values() if m.epoch == epoch
            )
            released = [
                i for i, m in list(heads.items()) if m.epoch == epoch
            ]
            for index in released:
                del heads[index]
            self._ckpt_complete(marker)
            for index in released:
                stash = blocked.get(index)
                while stash:
                    element = stash.popleft()
                    if isinstance(element, CheckpointPunctuation):
                        heads[index] = element
                        break
                    self.process_element(index, element)

    def _ckpt_complete(self, marker: CheckpointPunctuation) -> None:
        """The aligned cut passed this operator: snapshot and sweep on.

        Forwarding bypasses :meth:`emit_punctuation` (whose guard expiry
        expects schema punctuation) and goes straight onto every output
        queue, behind all pre-cut tuples.  At a terminal sink the sweep
        ends: the epoch is complete plan-wide, so a CHECKPOINT
        acknowledgement travels back upstream to the sources.
        """
        runtime = self.runtime
        checkpoints = getattr(runtime, "checkpoints", None)
        if checkpoints is not None:
            checkpoints.snapshot(self, marker)
        if self.outputs:
            for edge in self.outputs:
                edge.queue.put(marker)
            return
        message = ControlMessage(
            ControlMessageKind.CHECKPOINT,
            Direction.UPSTREAM,
            payload=marker,
            sender=self.name,
            sent_at=self.now(),
        )
        for port in self.inputs:
            if port is None:
                continue
            port.control.send(message)
            if port.producer is not None:
                runtime.notify_control(port.producer, at=self.now())

    def _ckpt_port_busy(self, port_index: int) -> bool:
        """Is ``port_index`` still mid-alignment (head pending or stash
        non-empty)?  A busy port must not be marked done yet."""
        heads = self._ckpt_heads
        if heads and port_index in heads:
            return True
        blocked = self._ckpt_blocked
        return bool(blocked and blocked.get(port_index))

    def _ckpt_port_done(self, port_index: int) -> None:
        """Runtime hook: ``port_index`` was just marked done.

        Shrinking the live set may satisfy alignment for the remaining
        heads (a finished source never sends its next marker), so pump.
        """
        if self._ckpt_heads is not None:
            self._ckpt_pump()

    # ------------------------------------------------- elastic rebalancing

    def rebalance_migratable(self, key_names: Sequence[str]) -> str | None:
        """Can this operator's state migrate between shard lanes?

        Returns None when it can, else a human-readable decline reason
        (the elastic controller records it and leaves the region alone).
        The default says yes for stateless operators -- nothing to move
        -- and no for any operator that snapshots state but offers no
        keyed extraction seam: migrating a slice of opaque state is not
        possible without one.
        """
        if self.n_inputs > 1:
            return "multi-input operator inside a shard lane"
        if (
            type(self).snapshot_state is not Operator.snapshot_state
            and type(self).extract_keyed_state
            is Operator.extract_keyed_state
        ):
            return "stateful operator without a keyed-state seam"
        return None

    def extract_keyed_state(
        self,
        key_names: Sequence[str],
        route: Callable[[Sequence[Any]], "int | None"],
    ) -> dict[int, Any]:
        """Remove and return state for keys ``route`` sends elsewhere.

        ``route(key_values)`` returns the destination lane for moved
        keys and None for keys staying put.  The result maps destination
        lanes to opaque *blobs*; each blob should be a dict keyed by
        state key (the ledger sizes migrations by ``len(blob)``), and
        must round-trip through :meth:`install_keyed_state`.  Default:
        nothing to extract (stateless operators).
        """
        return {}

    def install_keyed_state(
        self, key_names: Sequence[str], blob: Any
    ) -> None:
        """Merge a blob from :meth:`extract_keyed_state` into this state.

        Must *accumulate* rather than overwrite: on the abort path a
        lane re-installs its own deposit on top of state it has since
        rebuilt from post-cut tuples.
        """

    def on_rebalance_control(self, message: ControlMessage) -> bool:
        """Handle a REBALANCE control message; False forwards it on.

        The partition overrides this (commands arrive downstream from
        the controller, acks upstream from the merge); every other
        operator relays hop-by-hop via :meth:`forward_control`.
        """
        return False

    def _on_rebalance_marker(
        self, port_index: int, marker: RebalancePunctuation
    ) -> None:
        """A rebalance marker reached this lane member in stream order.

        ``cut``: every pre-cut tuple on this lane is already folded into
        local state (the marker rides the data queue behind them), so
        extracting moved keys *now* captures exactly the pre-cut state;
        the partition holds moved-key tuples until the install, so this
        state cannot grow stale while banked.  ``install``: claim and
        merge deposits destined for this seat.  ``restore``: the
        rebalance aborted -- take back what this seat deposited.  The
        marker then sweeps on downstream (the merge terminates it).
        """
        record = marker.record
        if record is not None:
            position = record.positions.get(self.name)
            if position is not None:
                lane, member = position
                if marker.phase == "cut":
                    if not record.aborted:
                        extracted = self.extract_keyed_state(
                            record.key_names, record.dest_of
                        )
                        for dest, blob in sorted(extracted.items()):
                            if not record.deposit(
                                member, lane, dest, blob
                            ):
                                # Aborted between the check and the
                                # deposit (threaded race): keep the
                                # state where it was.
                                self.install_keyed_state(
                                    record.key_names, blob
                                )
                elif marker.phase == "install":
                    for blob in record.claim(member, lane):
                        self.install_keyed_state(record.key_names, blob)
                else:  # restore (abort path)
                    for blob in record.reclaim(member, lane):
                        self.install_keyed_state(record.key_names, blob)
        for edge in self.outputs:
            edge.queue.put(marker)

    # -------------------------------------------------------------- emission

    def emit(self, tup: StreamTuple) -> bool:
        """Send a result tuple downstream (all outputs).

        Applies output guards; returns False when the tuple was suppressed.
        """
        if self.output_guards.blocks(tup):
            self.metrics.output_guard_drops += 1
            return False
        self.metrics.tuples_out += 1
        for edge in self.outputs:
            edge.queue.put(tup)
        return True

    def emit_to(self, output_index: int, tup: StreamTuple) -> bool:
        """Send a result tuple on a single output (multi-output operators)."""
        if self.output_guards.blocks(tup):
            self.metrics.output_guard_drops += 1
            return False
        self.metrics.tuples_out += 1
        self.outputs[output_index].queue.put(tup)
        return True

    def emit_many(self, tuples: Sequence[StreamTuple]) -> int:
        """Send a batch of result tuples downstream (all outputs).

        Applies output guards; returns the number of tuples actually
        emitted.  This is the bulk counterpart of :meth:`emit` used by
        native :meth:`on_page` implementations: one guard pass, then one
        :meth:`~repro.stream.queues.DataQueue.put_many` per output edge.
        """
        if len(self.output_guards):
            kept = []
            blocks = self.output_guards.blocks
            for tup in tuples:
                if blocks(tup):
                    self.metrics.output_guard_drops += 1
                else:
                    kept.append(tup)
        else:
            kept = list(tuples)
        if not kept:
            return 0
        self.metrics.tuples_out += len(kept)
        for edge in self.outputs:
            edge.queue.put_many(kept)
        return len(kept)

    def emit_many_to(
        self, output_index: int, tuples: Sequence[StreamTuple]
    ) -> int:
        """Send a batch of result tuples on a single output edge.

        The single-edge counterpart of :meth:`emit_many`, used by
        multi-output operators with native batch paths (PARTITION's
        per-lane routing): one guard pass, one
        :meth:`~repro.stream.queues.DataQueue.put_many`.
        """
        if len(self.output_guards):
            kept = []
            blocks = self.output_guards.blocks
            for tup in tuples:
                if blocks(tup):
                    self.metrics.output_guard_drops += 1
                else:
                    kept.append(tup)
        else:
            kept = list(tuples)
        if not kept:
            return 0
        self.metrics.tuples_out += len(kept)
        self.outputs[output_index].queue.put_many(kept)
        return len(kept)

    def emit_punctuation(self, punct: Punctuation) -> None:
        """Send an embedded punctuation downstream (flushes pages).

        Also expires output guards the punctuation covers: once this subset
        of the output is complete, its guards can never fire again.
        """
        self.output_guards.expire_with(punct)
        self.metrics.punctuations_out += 1
        for edge in self.outputs:
            edge.queue.put(punct)

    def flush_outputs(self) -> None:
        """Seal and ship partially-filled output pages immediately.

        Demanded feedback and result requests carry "produce *now*"
        semantics; results emitted in response must not sit in an open
        page waiting for it to fill (the same latency problem NiagaraST
        solves by letting punctuation flush pages).
        """
        for edge in self.outputs:
            edge.queue.flush()

    # ----------------------------------------------------- feedback: produce

    def produce_feedback(
        self,
        feedback: FeedbackPunctuation,
        *,
        input_indices: Sequence[int] | None = None,
    ) -> None:
        """Issue feedback upstream on the given inputs (default: all).

        The feedback pattern must be phrased in terms of the target input's
        stream schema -- for unary operators that is this operator's input
        schema; producers of cross-input feedback pass explicit indices.
        """
        self.metrics.feedback_produced += 1
        self.runtime.feedback_log.record(
            self.now(), self.name, feedback, (), note="produced"
        )
        targets = (
            range(self.n_inputs) if input_indices is None else input_indices
        )
        for index in targets:
            self._send_upstream(index, feedback)

    def _send_upstream(
        self, port_index: int, feedback: FeedbackPunctuation
    ) -> None:
        port = self.input_port(port_index)
        message = ControlMessage(
            ControlMessageKind.FEEDBACK,
            Direction.UPSTREAM,
            payload=feedback,
            sender=self.name,
            sent_at=self.now(),
        )
        port.control.send(message)
        if port.producer is not None:
            self.runtime.notify_control(port.producer, at=self.now())

    def inject_feedback(self, feedback: FeedbackPunctuation) -> None:
        """Send client-originated feedback upstream from this operator.

        This is the entry point for *event-driven* feedback (section 3.3):
        an application event -- the user zooming the speed map, a poll --
        happens at this operator's seat in the plan and flows upstream like
        operator-discovered feedback.
        """
        # Injection happens at engine-clock time (a client action), which
        # may be ahead of this operator's last processing step.
        self.set_now(max(self._now, self.runtime.now()))
        self.metrics.feedback_produced += 1
        self.runtime.feedback_log.record(
            self.now(), self.name, feedback, (), note="injected"
        )
        for index in range(self.n_inputs):
            self._send_upstream(index, feedback)

    def request_results(self, pattern: Pattern | None = None) -> None:
        """Send a RESULT_REQUEST upstream on every input (Example 4)."""
        for index in range(self.n_inputs):
            port = self.input_port(index)
            port.control.send(
                ControlMessage(
                    ControlMessageKind.RESULT_REQUEST,
                    Direction.UPSTREAM,
                    payload=pattern,
                    sender=self.name,
                    sent_at=self.now(),
                )
            )
            if port.producer is not None:
                self.runtime.notify_control(port.producer, at=self.now())

    # ----------------------------------------------------- feedback: receive

    #: The output edge the feedback currently being handled arrived on
    #: (None when unknown).  Multi-output operators such as DUPLICATE need
    #: this to reconcile feedback across consumers before acting.
    feedback_source_edge: "OutputEdge | None" = None

    def receive_feedback(
        self,
        feedback: FeedbackPunctuation,
        from_edge: "OutputEdge | None" = None,
    ) -> list[ExploitAction]:
        """Engine entry point for feedback arriving from downstream.

        The pattern is phrased over this operator's *output* schema.
        Feedback-unaware operators ignore it (and cannot relay it).
        """
        self.feedback_source_edge = from_edge
        self.metrics.feedback_received += 1
        if self.output_schema is not None and (
            feedback.pattern.arity != len(self.output_schema)
        ):
            raise FeedbackError(
                f"{self.name}: feedback {feedback!r} has arity "
                f"{feedback.pattern.arity}, output schema has "
                f"{len(self.output_schema)}"
            )
        if not self.feedback_aware:
            self.metrics.feedback_ignored += 1
            self.runtime.feedback_log.record(
                self.now(), self.name, feedback, (ExploitAction.IGNORE,),
                note="feedback-unaware",
            )
            return [ExploitAction.IGNORE]
        if feedback.intent is FeedbackIntent.ASSUMED:
            actions = list(self.on_assumed(feedback))
        elif feedback.intent is FeedbackIntent.DESIRED:
            actions = list(self.on_desired(feedback))
        else:
            actions = list(self.on_demanded(feedback))
        if self.relay_enabled:
            relayed = self.relay_feedback(feedback)
            for index, sub in relayed.items():
                self.metrics.feedback_relayed += 1
                self._send_upstream(index, sub)
            if relayed:
                actions.append(ExploitAction.PROPAGATE)
        self.runtime.feedback_log.record(
            self.now(), self.name, feedback, actions
        )
        return actions

    # Per-intent exploitation hooks -------------------------------------------

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Default assumed-response: guard the output.

        Correct for every operator: the guarded output is exactly
        ``SR - subset(SR, f)``, the maximum exploitation Definition 1
        permits.  Stateful subclasses override to purge state and guard
        input where their semantics allow.
        """
        self.output_guards.install(
            feedback.pattern, origin=feedback, at=self.now()
        )
        return [ExploitAction.GUARD_OUTPUT]

    def on_desired(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Default desired-response: none (prioritisation is op-specific)."""
        return []

    def on_demanded(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Default demanded-response: none (partial results are op-specific)."""
        return []

    def on_result_request(self, pattern: Pattern | None) -> None:
        """Handle an on-demand result request; default: forward upstream."""
        for index in range(self.n_inputs):
            port = self.inputs[index]
            if port is None:
                continue
            port.control.send(
                ControlMessage(
                    ControlMessageKind.RESULT_REQUEST,
                    Direction.UPSTREAM,
                    payload=pattern,
                    sender=self.name,
                    sent_at=self.now(),
                )
            )
            if port.producer is not None:
                self.runtime.notify_control(port.producer, at=self.now())

    # ---------------------------------------------- flow control (backpressure)

    #: Operators that steer each output edge independently (PARTITION's
    #: per-lane routing) opt in: a *pause* on one output edge then stalls
    #: only that lane's emission -- the runtime keeps scheduling the
    #: operator while :meth:`holding_pressure` stays False, instead of
    #: freezing every lane because one replica's queue filled up.
    lane_flow_control: bool = False

    def holding_pressure(self) -> bool:
        """For ``lane_flow_control`` operators: is a full stall required?

        Consulted by :meth:`~repro.engine.runtime.RuntimeCore.is_paused`
        while any output edge is paused.  Return True once the operator
        can no longer absorb traffic for its paused lanes (its stash is
        full), making the pause transitive toward the source.
        """
        return False

    def on_pause(self, punct: Any, from_edge: "OutputEdge | None") -> None:
        """Observer hook: the runtime paused this operator on one edge.

        The engine already stops scheduling this operator's data work, so
        most operators need nothing here.  Operators that buffer
        internally (e.g. :class:`~repro.operators.buffer.PriorityBuffer`)
        override it to absorb in-flight pages instead of emitting.
        """

    def on_resume(self, punct: Any, from_edge: "OutputEdge | None") -> None:
        """Observer hook: the runtime lifted a pause on one edge."""

    def forward_control(self, message: ControlMessage) -> None:
        """Relay a control message this operator does not handle itself.

        Unknown or unhandled control kinds must keep travelling in their
        direction -- upstream messages to every input, downstream messages
        to every output -- rather than being silently dropped at the first
        operator that predates them.  The forwarded copy is re-stamped
        (``sender``/``sent_at``), so per-hop ``control_latency`` applies
        exactly as it does to relayed feedback.
        """
        self.metrics.control_forwarded += 1
        copy = ControlMessage(
            message.kind,
            message.direction,
            payload=message.payload,
            sender=self.name,
            sent_at=self.now(),
        )
        if message.direction is Direction.UPSTREAM:
            for port in self.inputs:
                if port is None:
                    continue
                port.control.send(copy)
                if port.producer is not None:
                    self.runtime.notify_control(port.producer, at=self.now())
        else:
            for edge in self.outputs:
                edge.control.send(copy)
                self.runtime.notify_control(edge.consumer, at=self.now())

    # -------------------------------------------------------- feedback: relay

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        """Map feedback onto input schemas where safe (Definition 2).

        The default uses the schema-level planner; operators with
        state-dependent propagation override this.  Operators without a
        schema mapping relay nothing.
        """
        if self._planner is None:
            return {}
        return self._planner.propagate(
            feedback, relayer=self.name, at=self.now()
        )

    # ---------------------------------------------------------------- repr

    def __repr__(self) -> str:
        kind = type(self).__name__
        return f"{kind}({self.name!r})"


class SourceOperator(Operator):
    """Base class for stream sources (no inputs).

    Subclasses implement :meth:`events`, yielding ``(arrival_time,
    element)`` pairs in non-decreasing arrival order; the engine replays
    them onto the output queue at those virtual times.  Assumed feedback
    reaching a source installs an output guard, which suppresses matching
    tuples *before they enter the plan* -- the cheapest possible
    exploitation point.
    """

    n_inputs = 0
    feedback_aware = True

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, output_schema, **kwargs)

    @abc.abstractmethod
    def events(self) -> Iterator[tuple[float, Any]]:
        """Yield ``(arrival_time, element)`` pairs in arrival order."""

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        raise PlanError(f"source {self.name} cannot receive tuples")

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        return {}  # nothing upstream of a source
