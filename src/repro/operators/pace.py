"""PACE: a bounded-disorder union that *produces* assumed feedback.

Example 3 / Experiment 1 of the paper: PACE unions the clean and the
imputed branch of a stream but bounds the maximum delay between them.
Tuples arriving more than ``tolerance`` behind the high watermark of the
timestamps seen are dropped as useless ("the speed map must be produced in
real time").  When that happens, PACE knows the lagging branch is doing
work that will be thrown away, so it issues assumed feedback::

    ¬[timestamp <= high_watermark - tolerance, *, ...]

to the lagging inputs.  An exploiting antecedent (IMPUTE) purges its
backlog of already-late tuples and skips new ones, spending its budget on
tuples that can still arrive in time.

PACE also *assumes* the punctuation it enforces: once the bound advances,
it emits embedded punctuation for the abandoned region downstream ("its
processing will continue as if it had received the embedded punctuation",
section 3.4), so downstream state can be purged even though the lagging
input never punctuated.

This corresponds to the ``WITH PACE ON <attr> <tolerance>`` clause of the
paper's SQL sketch (section 3.3, "Explicit" feedback).
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.operators.union import Union
from repro.punctuation.atoms import AtMost
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["Pace"]


class Pace(Union):
    """Union with a disorder bound and explicit-policy feedback.

    Parameters
    ----------
    timestamp_attribute:
        The attribute carrying application time.
    tolerance:
        Maximum permitted delay behind the high watermark (same unit as
        the timestamp attribute).
    feedback_enabled:
        When False, PACE still drops late tuples (the policy must hold)
        but never informs antecedents -- the paper's no-feedback baseline
        for Experiment 1.
    feedback_interval:
        Minimum advance of the bound between successive feedback
        punctuations, preventing a feedback storm (one message per
        dropped tuple would be pure overhead).
    feedback_bound:
        Which region the feedback declares useless.  ``"watermark"`` (the
        paper's policy: "tuples with timestamps less than the current
        high watermark are no longer needed") abandons everything behind
        the watermark, letting a lagging antecedent leap to fresh tuples;
        ``"tolerance"`` only abandons what the disorder bound has already
        condemned (``<= watermark - tolerance``) -- a conservative variant
        kept for the ablation study, which recovers much less because the
        antecedent keeps working at the lateness boundary.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        timestamp_attribute: str,
        tolerance: float,
        arity: int = 2,
        feedback_enabled: bool = True,
        feedback_interval: float = 0.0,
        feedback_bound: str = "watermark",
        **kwargs: Any,
    ) -> None:
        if feedback_bound not in ("watermark", "tolerance"):
            raise ValueError(
                f"feedback_bound must be 'watermark' or 'tolerance': "
                f"{feedback_bound!r}"
            )
        super().__init__(name, schema, arity=arity, **kwargs)
        self.feedback_bound = feedback_bound
        self._assumed_bound: float | None = None
        self._ts_index = schema.index_of(timestamp_attribute)
        self.timestamp_attribute = schema[self._ts_index].name
        self.tolerance = float(tolerance)
        self.feedback_enabled = feedback_enabled
        self.feedback_interval = float(feedback_interval)
        self.high_watermark: float | None = None
        self._input_watermarks: list[float | None] = [None] * arity
        self._last_feedback_bound: float | None = None
        self._last_punct_bound: float | None = None
        self.late_drops = 0
        self.late_drops_by_port = [0] * arity
        self.timely_tuples = 0
        self.timely_by_port = [0] * arity

    # -- durability --------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["assumed_bound"] = self._assumed_bound
        state["high_watermark"] = self.high_watermark
        state["input_watermarks"] = list(self._input_watermarks)
        state["last_feedback_bound"] = self._last_feedback_bound
        state["last_punct_bound"] = self._last_punct_bound
        state["late_drops"] = self.late_drops
        state["late_drops_by_port"] = list(self.late_drops_by_port)
        state["timely_tuples"] = self.timely_tuples
        state["timely_by_port"] = list(self.timely_by_port)
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._assumed_bound = state["assumed_bound"]
        self.high_watermark = state["high_watermark"]
        self._input_watermarks = list(state["input_watermarks"])
        self._last_feedback_bound = state["last_feedback_bound"]
        self._last_punct_bound = state["last_punct_bound"]
        self.late_drops = state["late_drops"]
        self.late_drops_by_port = list(state["late_drops_by_port"])
        self.timely_tuples = state["timely_tuples"]
        self.timely_by_port = list(state["timely_by_port"])

    # -- data --------------------------------------------------------------------

    @property
    def bound(self) -> float | None:
        """Current cut-off: tuples at or before this timestamp are dropped.

        The larger of the disorder bound (watermark - tolerance) and any
        region PACE has already *assumed* complete via feedback: once PACE
        declares a region useless it must stand by that declaration, or
        the progress punctuation it emitted downstream would be violated.
        """
        if self.high_watermark is None:
            return None
        cut = self.high_watermark - self.tolerance
        if self._assumed_bound is not None:
            cut = max(cut, self._assumed_bound)
        return cut

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        timestamp = float(tup.values[self._ts_index])
        previous_input = self._input_watermarks[port_index]
        if previous_input is None or timestamp > previous_input:
            self._input_watermarks[port_index] = timestamp
        if self.high_watermark is None or timestamp > self.high_watermark:
            self.high_watermark = timestamp
        tolerance_bound = self.high_watermark - self.tolerance
        if timestamp <= tolerance_bound:
            # Genuine divergence: the disorder policy condemns this tuple,
            # and lateness this deep is the signal to issue feedback.
            self.late_drops += 1
            self.late_drops_by_port[port_index] += 1
            self._on_late_tuple(port_index, tolerance_bound)
            return
        if (
            self._assumed_bound is not None
            and timestamp <= self._assumed_bound
        ):
            # Straggler from a region PACE already declared complete: it
            # must be dropped for consistency with the punctuation emitted
            # downstream, but it is NOT fresh divergence -- triggering
            # feedback here would escalate the assumed bound on every
            # in-flight tuple and needlessly discard recoverable work.
            self.late_drops += 1
            self.late_drops_by_port[port_index] += 1
            return
        self.timely_tuples += 1
        self.timely_by_port[port_index] += 1
        self.emit(tup)

    def _on_late_tuple(self, port_index: int, bound: float) -> None:
        """A tuple exceeded the disorder bound: consider issuing feedback."""
        if not self.feedback_enabled:
            return
        if self.feedback_bound == "watermark":
            declared = self.high_watermark or bound
        else:
            declared = bound
        if self._last_feedback_bound is not None and (
            declared <= self._last_feedback_bound  # no new information
            or declared < self._last_feedback_bound + self.feedback_interval
        ):
            return
        self._last_feedback_bound = declared
        pattern = Pattern.single(
            self.output_schema, self.timestamp_attribute, AtMost(declared)
        )
        feedback = FeedbackPunctuation.assumed(
            pattern, issuer=self.name, issued_at=self.now()
        )
        lagging = [
            i
            for i, watermark in enumerate(self._input_watermarks)
            if watermark is None or watermark < declared
        ] or list(range(self.n_inputs))
        self.produce_feedback(feedback, input_indices=lagging)
        # PACE now proceeds as if it had received this punctuation
        # (section 3.4): the declared region is final.
        self._assumed_bound = max(self._assumed_bound or declared, declared)
        self._emit_assumed_progress(declared)

    def _emit_assumed_progress(self, bound: float) -> None:
        """Emit the punctuation PACE now assumes (late region abandoned)."""
        if (
            self._last_punct_bound is not None
            and bound <= self._last_punct_bound
        ):
            return
        self._last_punct_bound = bound
        self.emit_punctuation(
            Punctuation.up_to(
                self.output_schema,
                self.timestamp_attribute,
                bound,
                inclusive=True,
                source=self.name,
            )
        )

    # -- punctuation --------------------------------------------------------------

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Forward like UNION, but the abandoned region counts as covered."""
        bound = self.bound
        if bound is not None:
            assumed = Pattern.single(
                self.output_schema,
                self.timestamp_attribute,
                AtMost(bound),
            )
            if assumed.subsumes(punct.pattern):
                self._advance_frontier(port_index, punct.pattern)
                self.emit_punctuation(punct)
                return
        super().on_punctuation(port_index, punct)
