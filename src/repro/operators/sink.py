"""Sinks: terminal operators that collect results and drive demand.

:class:`CollectSink` records every arriving tuple with its (virtual)
arrival time into the run's output log -- Figures 5 and 6 are drawn
directly from these records.

:class:`OnDemandSink` models Example 4's poll-based client: results are
produced only when the application asks.  ``poll()`` sends a
``RESULT_REQUEST`` control message upstream (released buffered results flow
back down), and ``demand(pattern)`` issues demanded feedback ``![…]`` that
makes blocking operators emit partial results immediately (the
financial-speculator scenario of section 3.4).
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["CollectSink", "OnDemandSink"]


class CollectSink(Operator):
    """Collect tuples (and optionally punctuation) with arrival times."""

    feedback_aware = False  # a sink exploits nothing; it only observes

    def __init__(
        self,
        name: str,
        schema: Schema | None = None,
        *,
        tag: str = "",
        keep_punctuation: bool = False,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, schema, **kwargs)
        self.tag = tag or name
        self.keep_punctuation = keep_punctuation
        self.results: list[StreamTuple] = []
        self.arrivals: list[tuple[float, StreamTuple]] = []
        self.punctuations: list[Punctuation] = []

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self.results.append(tup)
        self.arrivals.append((self.now(), tup))
        self.runtime.output_log.record(
            self.now(), tup, sink=self.name, tag=self.tag
        )

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        if self.keep_punctuation:
            self.punctuations.append(punct)

    def __len__(self) -> int:
        return len(self.results)


class OnDemandSink(CollectSink):
    """A polling client: requests results instead of streaming them.

    ``poll`` and ``demand`` are driven either by test/example code between
    engine runs or by a scheduled callback inside the engines.
    """

    def __init__(self, name: str, schema: Schema | None = None, **kwargs: Any) -> None:
        super().__init__(name, schema, **kwargs)
        self.polls = 0
        self.demands = 0

    def poll(self, pattern: Pattern | None = None) -> None:
        """Ask upstream operators to release buffered results."""
        self.set_now(max(self._now, self.runtime.now()))
        self.polls += 1
        self.request_results(pattern)

    def demand(self, pattern: Pattern) -> None:
        """Issue ``![pattern]``: partial results now beat exact later."""
        self.set_now(max(self._now, self.runtime.now()))
        self.demands += 1
        feedback = FeedbackPunctuation.demanded(
            pattern, issuer=self.name, issued_at=self.now()
        )
        self.metrics.feedback_produced += 1
        self.runtime.feedback_log.record(
            self.now(), self.name, feedback, (), note="demanded by client"
        )
        for index in range(self.n_inputs):
            self._send_upstream(index, feedback)
