"""Sinks: terminal operators that collect results and drive demand.

:class:`CollectSink` records every arriving tuple with its (virtual)
arrival time into the run's output log -- Figures 5 and 6 are drawn
directly from these records.

:class:`OnDemandSink` models Example 4's poll-based client: results are
produced only when the application asks.  ``poll()`` sends a
``RESULT_REQUEST`` control message upstream (released buffered results flow
back down), and ``demand(pattern)`` issues demanded feedback ``![…]`` that
makes blocking operators emit partial results immediately (the
financial-speculator scenario of section 3.4).

:class:`AwaitableSink` is the async-native client adapter: a collect sink
whose completed results can be ``await``-ed from coroutine code running
alongside an :meth:`~repro.engine.async_engine.AsyncioEngine.arun`.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.errors import EngineError
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["AwaitableSink", "CollectSink", "OnDemandSink", "PushSink"]


class CollectSink(Operator):
    """Collect tuples (and optionally punctuation) with arrival times."""

    feedback_aware = False  # a sink exploits nothing; it only observes

    def __init__(
        self,
        name: str,
        schema: Schema | None = None,
        *,
        tag: str = "",
        keep_punctuation: bool = False,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, schema, **kwargs)
        self.tag = tag or name
        self.keep_punctuation = keep_punctuation
        self.results: list[StreamTuple] = []
        self.arrivals: list[tuple[float, StreamTuple]] = []
        self.punctuations: list[Punctuation] = []

    #: Durability hooks, armed by the checkpoint coordinator: a
    #: delivery-log writer (write-through of every recorded arrival,
    #: flushed at each checkpoint) and the exactly-once replay-window
    #: dedup counter a recovery run installs.  ``None`` = off.
    _ckpt_writer: Any = None
    _ckpt_dedup: Any = None

    def _ckpt_replayed(self, tup: StreamTuple) -> bool:
        """Drop ``tup`` if it is a replayed pre-crash delivery.

        The dedup counter holds the multiset of deliveries between the
        recovered checkpoint's cut and the crash; replay regenerates
        exactly that window (plus fresh results), so each counted key
        swallows one arrival.  The filter removes itself once empty.
        """
        dedup = self._ckpt_dedup
        if dedup is None:
            return False
        from repro.durability.coordinator import delivery_key

        key = delivery_key(tup)
        if dedup.get(key, 0) <= 0:
            return False
        dedup[key] -= 1
        if dedup[key] <= 0:
            del dedup[key]
        if not dedup:
            self._ckpt_dedup = None
        return True

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        if self._ckpt_dedup is not None and self._ckpt_replayed(tup):
            return
        now = self.now()
        self.results.append(tup)
        self.arrivals.append((now, tup))
        if self._ckpt_writer is not None:
            self._ckpt_writer.append((now, tup))
        self.runtime.output_log.record(
            now, tup, sink=self.name, tag=self.tag
        )

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: record a whole run of arrivals in bulk.

        Element-wise equivalent to :meth:`on_tuple` -- a batch is
        delivered at one engine step, so every element of it carries the
        same arrival time on either path.
        """
        if self._ckpt_dedup is not None:
            # Replay-window dedup must inspect each arrival.
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        now = self.now()
        self.results.extend(batch)
        self.arrivals.extend((now, tup) for tup in batch)
        writer = self._ckpt_writer
        if writer is not None:
            for tup in batch:
                writer.append((now, tup))
        self.runtime.output_log.record_many(
            now, batch, sink=self.name, tag=self.tag
        )

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        if self.keep_punctuation:
            self.punctuations.append(punct)

    def on_run_aborted(self, error: BaseException) -> None:
        """Make deliveries buffered since the last checkpoint durable.

        The delivery-log writer is write-through but buffered: entries
        become durable at ``flush()``, which the checkpoint coordinator
        calls at each marker and at clean finish.  A cancelled or failed
        run reaches neither, so without this hook every delivery since
        the last cut would vanish from the log.  Flushing here is safe
        for exactly-once recovery: the replay window is counted from the
        recovered cut over whatever the log holds, so the extra entries
        are regenerated by replay and swallowed by the dedup filter.
        """
        writer = self._ckpt_writer
        if writer is not None:
            try:
                writer.flush()
            except Exception:
                # The abort path must not mask the original failure with
                # a store error; the log simply stays at its last cut.
                pass

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "results": self.results,
            "arrivals": self.arrivals,
            "punctuations": self.punctuations,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.results = state["results"]
        self.arrivals = state["arrivals"]
        self.punctuations = state["punctuations"]

    def __len__(self) -> int:
        return len(self.results)


class AwaitableSink(CollectSink):
    """A collect sink whose finished results are awaitable.

    Client coroutines call :meth:`results_async` (or simply ``await
    sink``) to receive the collected tuples once the sink's inputs have
    drained -- the natural shape for serving results out of an
    :class:`~repro.engine.async_engine.AsyncioEngine` run that is itself
    a coroutine on the same loop::

        plan = flow.build()
        engine = create_engine("asyncio", plan)
        run = asyncio.ensure_future(engine.arun())
        rows = await plan.operator("sink")   # resolves at end of stream
        result = await run

    Works on every engine: with the threaded runtime the completion is
    handed to the waiting loop via ``call_soon_threadsafe``, and after a
    synchronous run (any engine) the await resolves immediately.  A run
    that *fails* before this sink finishes (watchdog timeout, action
    error) fails the waiters too -- :meth:`results_async` raises instead
    of hanging on an ``on_finish`` that will never come.
    """

    def __init__(self, name: str, schema: Schema | None = None, **kwargs: Any) -> None:
        super().__init__(name, schema, **kwargs)
        self._completed = False
        self._run_error: BaseException | None = None
        #: Waiting client coroutines, each on its own loop: the threaded
        #: runtime finishes this sink on an operator thread.
        self._done_waiters: list[
            tuple[asyncio.AbstractEventLoop, asyncio.Event]
        ] = []
        self._guard = threading.Lock()

    def _settle(self) -> None:
        """Wake every waiter (completion and abort share this path)."""
        with self._guard:
            waiters, self._done_waiters = self._done_waiters, []
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        for loop, event in waiters:
            if loop is running:
                event.set()
            else:
                loop.call_soon_threadsafe(event.set)

    def on_finish(self) -> None:
        with self._guard:
            self._completed = True
        self._settle()

    def on_run_aborted(self, error: BaseException) -> None:
        super().on_run_aborted(error)  # flush the partial delivery log
        with self._guard:
            if self._completed:
                return
            self._run_error = error
        self._settle()

    def _outcome(self) -> list[StreamTuple]:
        if self._run_error is not None:
            raise EngineError(
                f"{self.name}: the run aborted before end of stream"
            ) from self._run_error
        return list(self.results)

    async def results_async(self) -> list[StreamTuple]:
        """The collected tuples, available once the stream has drained.

        Raises :class:`~repro.errors.EngineError` (chaining the original
        failure) when the run died before this sink finished.
        """
        with self._guard:
            if self._completed or self._run_error is not None:
                return self._outcome()
            loop = asyncio.get_running_loop()
            event = asyncio.Event()
            self._done_waiters.append((loop, event))
        await event.wait()
        return self._outcome()

    def __await__(self):
        return self.results_async().__await__()


class PushSink(AwaitableSink):
    """An always-on delivery sink that pushes results as they arrive.

    Where :class:`AwaitableSink` hands over the *complete* result set at
    end of stream, a push sink calls ``publish(tup)`` the moment each
    result is produced -- the delivery half of the serving layer, with
    ``publish`` typically bound to :meth:`repro.stream.Broadcast.publish`
    so results fan out to live SSE/websocket subscribers
    (``docs/serving.md``).

    Two always-on adaptations keep memory bounded over unbounded runs:
    the shared run :class:`~repro.engine.logs.OutputLog` is *not* written
    (it grows without bound and is a batch-analysis artifact), and the
    locally retained ``results``/``arrivals`` lists are trimmed to the
    last ``retain`` entries (``retain=None`` keeps everything, restoring
    collect-sink behaviour).  The durability seams are untouched: the
    delivery-log writer and the exactly-once replay dedup filter see
    every arrival, so checkpointed serving flows recover like any other.
    """

    def __init__(
        self,
        name: str,
        schema: Schema | None = None,
        *,
        publish: Any = None,
        on_complete: Any = None,
        retain: int | None = 1024,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, schema, **kwargs)
        if publish is not None and not callable(publish):
            raise EngineError(
                f"{name}: publish must be callable, got {publish!r}"
            )
        if on_complete is not None and not callable(on_complete):
            raise EngineError(
                f"{name}: on_complete must be callable, got {on_complete!r}"
            )
        if retain is not None and retain < 0:
            raise EngineError(
                f"{name}: retain must be >= 0 or None, got {retain}"
            )
        self.publish = publish
        #: Called at clean end of stream (typically ``Broadcast.close``,
        #: ending live subscribers once their buffers drain).  *Not*
        #: called when the run aborts: a supervised restart keeps the
        #: hub and its subscribers alive across the rebuild.
        self.on_complete = on_complete
        self.retain = retain
        #: Total results pushed over the sink's lifetime (trim-proof).
        self.delivered = 0

    def on_finish(self) -> None:
        super().on_finish()
        if self.on_complete is not None:
            self.on_complete()

    def _trim(self) -> None:
        retain = self.retain
        if retain is None or len(self.results) <= retain:
            return
        cut = len(self.results) - retain
        del self.results[:cut]
        del self.arrivals[:cut]

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        if self._ckpt_dedup is not None and self._ckpt_replayed(tup):
            return
        now = self.now()
        self.results.append(tup)
        self.arrivals.append((now, tup))
        if self._ckpt_writer is not None:
            self._ckpt_writer.append((now, tup))
        self.delivered += 1
        if self.publish is not None:
            self.publish(tup)
        self._trim()

    def on_page(self, port_index: int, batch: list) -> None:
        if self._ckpt_dedup is not None:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        now = self.now()
        self.results.extend(batch)
        self.arrivals.extend((now, tup) for tup in batch)
        writer = self._ckpt_writer
        if writer is not None:
            for tup in batch:
                writer.append((now, tup))
        self.delivered += len(batch)
        if self.publish is not None:
            for tup in batch:
                self.publish(tup)
        self._trim()

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["delivered"] = self.delivered
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.delivered = state.get("delivered", len(self.results))


class OnDemandSink(CollectSink):
    """A polling client: requests results instead of streaming them.

    ``poll`` and ``demand`` are driven either by test/example code between
    engine runs or by a scheduled callback inside the engines.
    """

    def __init__(self, name: str, schema: Schema | None = None, **kwargs: Any) -> None:
        super().__init__(name, schema, **kwargs)
        self.polls = 0
        self.demands = 0

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["polls"] = self.polls
        state["demands"] = self.demands
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.polls = state["polls"]
        self.demands = state["demands"]

    def poll(self, pattern: Pattern | None = None) -> None:
        """Ask upstream operators to release buffered results."""
        self.set_now(max(self._now, self.runtime.now()))
        self.polls += 1
        self.request_results(pattern)

    def demand(self, pattern: Pattern) -> None:
        """Issue ``![pattern]``: partial results now beat exact later."""
        self.set_now(max(self._now, self.runtime.now()))
        self.demands += 1
        feedback = FeedbackPunctuation.demanded(
            pattern, issuer=self.name, issued_at=self.now()
        )
        self.metrics.feedback_produced += 1
        self.runtime.feedback_log.record(
            self.now(), self.name, feedback, (), note="demanded by client"
        )
        for index in range(self.n_inputs):
            self._send_upstream(index, feedback)
