"""PriorityBuffer: honouring *desired* feedback by reordering production.

Desired punctuation (``?[…]``, section 3.4) asks antecedents to produce a
subset **sooner** without changing the overall result.  This operator makes
that concrete: it holds up to ``capacity`` pending tuples and, on every
arrival, releases the highest-priority pending tuple -- where priority
means "matches an active desired pattern" (most recent desire first),
falling back to arrival order.

With no desired feedback the buffer is a FIFO delay line of depth
``capacity``; once a ``?[…]`` arrives, matching tuples overtake the
backlog.  The operator also honours assumed feedback with the usual input
guard (a prioritised subset can still later be abandoned), and honours
runtime *pause* flow control by absorbing arrivals into its backlog
instead of releasing downstream -- the buffer is the natural shock
absorber when a bounded downstream queue pushes back.

Example 1 of the paper maps onto this operator: vehicle readings from
highly-congested segments marked high-priority overtake readings from
other segments inside the cleaning/aggregation pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["PriorityBuffer"]


class PriorityBuffer(Operator):
    """Bounded reordering buffer driven by desired feedback."""

    feedback_aware = True

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        capacity: int = 64,
        max_desires: int = 16,
        **kwargs: Any,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        self.capacity = capacity
        self.max_desires = max_desires
        self._pending: deque[StreamTuple] = deque()
        self._desires: deque[Pattern] = deque()
        self._held = False  # a downstream pause is in effect
        self.priority_releases = 0

    # -- data --------------------------------------------------------------------

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self._pending.append(tup)
        self.metrics.grow_state()
        while not self._held and len(self._pending) >= self.capacity:
            self._release_one()

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path for the FIFO regime: drain releases in one emission.

        With desires active, release order is data-dependent (a desired
        tuple later in the run must not overtake scans that per-element
        arrival would not have seen), so the per-element path is kept.
        """
        if self._desires or self._held:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        pending = self._pending
        released: list[StreamTuple] = []
        for tup in batch:
            pending.append(tup)
            self.metrics.grow_state()
            while len(pending) >= self.capacity:
                released.append(pending.popleft())
                self.metrics.shrink_state()
        if released:
            self.emit_many(released)

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Punctuation flushes covered pending tuples, then forwards.

        Tuples covered by the punctuation cannot be held back -- downstream
        operators will treat their subset as complete once the punctuation
        passes.
        """
        kept: deque[StreamTuple] = deque()
        for tup in self._pending:
            if punct.covers(tup):
                self._emit_pending(tup)
            else:
                kept.append(tup)
        self._pending = kept
        self.emit_punctuation(punct)

    def on_finish(self) -> None:
        while self._pending:
            self._release_one()

    def _release_one(self) -> None:
        """Release the best pending tuple (desired match first, then FIFO)."""
        for pattern in self._desires:
            for index, tup in enumerate(self._pending):
                if pattern.matches(tup):
                    del self._pending[index]
                    self.priority_releases += 1
                    self._emit_pending(tup)
                    return
        self._emit_pending(self._pending.popleft())

    def _emit_pending(self, tup: StreamTuple) -> None:
        self.metrics.shrink_state()
        self.emit(tup)

    # -- durability --------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["pending"] = list(self._pending)
        state["desires"] = list(self._desires)
        state["held"] = self._held
        state["priority_releases"] = self.priority_releases
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._pending = deque(state["pending"])
        self._desires = deque(state["desires"])
        self._held = state["held"]
        self.priority_releases = state["priority_releases"]

    # -- flow control ------------------------------------------------------------

    def on_pause(self, punct: Any, from_edge: Any) -> None:
        """Absorb arrivals while downstream pushes back.

        The engine stops delivering pages to a paused operator; this hook
        additionally stops the *releases* an in-flight page would trigger,
        so the buffer soaks up the tail instead of feeding the congested
        queue.
        """
        self._held = True

    def on_resume(self, punct: Any, from_edge: Any) -> None:
        """Release the over-capacity backlog accumulated while held.

        With several output edges the hold lasts until the *last* pause
        is lifted (the runtime tracks the paused-edge set).
        """
        is_paused = getattr(self.runtime, "is_paused", None)
        self._held = bool(is_paused(self)) if is_paused is not None else False
        while not self._held and len(self._pending) >= self.capacity:
            self._release_one()

    # -- feedback ---------------------------------------------------------------

    def on_desired(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Record the desire (most recent first) and surface matches now."""
        self._desires.appendleft(feedback.pattern)
        while len(self._desires) > self.max_desires:
            self._desires.pop()
        released = 0
        matching = [t for t in self._pending if feedback.pattern.matches(t)]
        for tup in matching:
            self._pending.remove(tup)
            self.priority_releases += 1
            released += 1
            self._emit_pending(tup)
        if released:
            self.flush_outputs()  # prioritised tuples must not wait on a page
        return [ExploitAction.PRIORITIZE]

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Guard input and drop covered pending tuples (they are unneeded)."""
        self.input_port(0).guards.install(
            feedback.pattern, origin=feedback, at=self.now()
        )
        before = len(self._pending)
        self._pending = deque(
            t for t in self._pending if not feedback.pattern.matches(t)
        )
        dropped = before - len(self._pending)
        if dropped:
            self.metrics.shrink_state(dropped, purged=True)
        return [ExploitAction.GUARD_INPUT, ExploitAction.PURGE_STATE]
