"""Windowed group aggregates: COUNT / SUM / AVG / MAX / MIN.

Output schema is ``(window, g..., a)``: a window identifier, the grouping
attributes, and the aggregate value.  Windows are defined over a
progressing (timestamp) attribute with ``width`` and ``slide`` --
``slide == width`` gives tumbling windows, ``slide < width`` the paper's
overlapping "slide-by-tuple"-style windows of Example 2.

Feedback handling implements Table 1 and the section 3.5 narrative:

* ``¬[g,*]`` (group/window constrained, value free): purge matching state;
  for **tumbling** windows also guard the input (window atoms translate to
  timestamp ranges) and relay upstream.  For **sliding** windows input
  guarding and relaying are *incorrect* -- a tuple of a useless window also
  belongs to other windows (Example 2) -- so exploitation stays internal:
  guarded windows are simply never accumulated.
* ``¬[*, >=a]`` with a monotone aggregate (COUNT, MAX): groups whose
  partial already satisfies the bound are *certain* to match; they are
  purged, their (window, group) pairs are input-guarded, and the concrete
  set G is propagated upstream ("state-dependent" propagation).
* ``¬[*, <=a]`` or any value feedback on non-monotone aggregates
  (SUM, AVG): output guard only -- a partial that matches now may grow out
  of the region later (the paper's AVERAGE-with-partial-51 example).
* ``![…]`` (demanded): matching open windows emit their current partial
  immediately (the financial-speculator example) -- partial results now
  beat exact results too late.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.characterization import ConstraintShape
from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.errors import PlanError
from repro.operators.base import Operator
from repro.punctuation.atoms import (
    AtLeast,
    AtMost,
    Atom,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
    WILDCARD,
)
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Attribute, AttributeOrigin, Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["AggregateKind", "WindowAggregate"]


class AggregateKind:
    """Names and properties of the supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MAX = "max"
    MIN = "min"

    ALL = (COUNT, SUM, AVG, MAX, MIN)

    #: Aggregates whose partial value can only grow as tuples arrive.
    MONOTONE_INCREASING = frozenset({COUNT, MAX})
    #: Aggregates whose partial value can only shrink as tuples arrive.
    MONOTONE_DECREASING = frozenset({MIN})


@dataclass
class _WindowState:
    """Partial aggregate for one (window, group) pair."""

    count: int = 0
    total: float = 0.0
    maximum: float | None = None
    minimum: float | None = None
    partial_emitted: bool = False

    def add(self, value: float | None) -> None:
        self.count += 1
        if value is None:
            return
        self.total += value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.minimum is None or value < self.minimum:
            self.minimum = value

    def value(self, kind: str) -> float | None:
        if kind == AggregateKind.COUNT:
            return self.count
        if kind == AggregateKind.SUM:
            return self.total
        if kind == AggregateKind.AVG:
            return self.total / self.count if self.count else None
        if kind == AggregateKind.MAX:
            return self.maximum
        return self.minimum


class WindowAggregate(Operator):
    """Group-by window aggregation with full feedback support."""

    feedback_aware = True

    def __init__(
        self,
        name: str,
        input_schema: Schema,
        *,
        kind: str,
        window_attribute: str,
        width: float,
        slide: float | None = None,
        value_attribute: str | None = None,
        group_by: Sequence[str] = (),
        origin: float = 0.0,
        window_name: str = "window",
        value_name: str | None = None,
        emit_on_close: bool = True,
        exploit_level: int = 2,
        **kwargs: Any,
    ) -> None:
        if kind not in AggregateKind.ALL:
            raise PlanError(f"unknown aggregate kind {kind!r}")
        if kind != AggregateKind.COUNT and value_attribute is None:
            raise PlanError(f"{kind} requires a value attribute")
        if width <= 0:
            raise PlanError(f"window width must be > 0: {width}")
        slide = width if slide is None else slide
        if slide <= 0 or slide > width:
            raise PlanError(
                f"slide must be in (0, width]: slide={slide}, width={width}"
            )
        if value_name is None:
            value_name = (
                "count" if kind == AggregateKind.COUNT
                else f"{kind}_{value_attribute}"
            )
        output_schema = Schema(
            [Attribute(window_name, "int", progressing=True)]
            + [input_schema.attribute(g) for g in group_by]
            + [Attribute(value_name, "float")]
        )
        mapping = SchemaMapping(
            output_schema,
            (input_schema,),
            {
                window_name: (),  # computed (but monotone-translatable)
                value_name: (),
                **{
                    g: (AttributeOrigin(0, g, exact=True),) for g in group_by
                },
            },
        )
        super().__init__(name, output_schema, mapping=mapping, **kwargs)
        if exploit_level not in (1, 2):
            raise PlanError(
                f"exploit_level must be 1 (output guard only) or 2 "
                f"(full local exploitation): {exploit_level}"
            )
        #: Experiment 2's scheme knob: level 1 restricts every assumed
        #: response to an output guard (scheme F1); level 2 enables purging
        #: and input guards (schemes F2/F3; F3 additionally sets
        #: ``relay_enabled`` on the instance).
        self.exploit_level = exploit_level
        self.kind = kind
        self.input_schema = input_schema
        self.window_name = window_name
        self.value_name = value_name
        self.width = float(width)
        self.slide = float(slide)
        self.origin = float(origin)
        self.emit_on_close = emit_on_close
        self.group_by = tuple(group_by)
        self._ts_index = input_schema.index_of(window_attribute)
        self.window_attribute = input_schema[self._ts_index].name
        self._value_index = (
            input_schema.index_of(value_attribute)
            if value_attribute is not None else None
        )
        self._group_indices = tuple(
            input_schema.index_of(g) for g in group_by
        )
        self._state: dict[tuple[int, tuple], _WindowState] = {}
        # Internal window guards: output-schema patterns whose matching
        # (window, group) pairs must not be accumulated (Example 2).
        self._window_guards: list[Pattern] = []
        self.windows_skipped = 0
        self._result_buffer: list[StreamTuple] = []
        # Highest window id already asserted complete downstream.
        self._last_punct_window: int | None = None

    # -------------------------------------------------------------- durability

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["window_state"] = dict(self._state)
        state["window_guards"] = list(self._window_guards)
        state["windows_skipped"] = self.windows_skipped
        state["result_buffer"] = list(self._result_buffer)
        state["last_punct_window"] = self._last_punct_window
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._state = dict(state["window_state"])
        self._window_guards[:] = state["window_guards"]
        self.windows_skipped = state["windows_skipped"]
        self._result_buffer[:] = state["result_buffer"]
        self._last_punct_window = state["last_punct_window"]

    # ------------------------------------------------- elastic rebalancing

    def rebalance_migratable(self, key_names: tuple[str, ...]) -> str | None:
        """Migratable when the partition key determines the group key.

        State is keyed by ``(window, group)``; if every partition-key
        attribute is a grouping attribute, a key's slot pins every state
        entry it can ever touch, so those entries can move wholesale.
        (``_window_guards`` stay behind: feedback is a hint, so a guard
        missing at the destination merely re-accumulates purgeable
        state -- the null response is always correct.)
        """
        missing = [k for k in key_names if k not in self.group_by]
        if missing:
            return (
                f"partition key attribute(s) {', '.join(missing)} are not "
                "grouping attributes, so keyed state cannot be pinned"
            )
        return None

    def extract_keyed_state(
        self, key_names: tuple[str, ...], route: Any
    ) -> dict[int, Any]:
        positions = tuple(self.group_by.index(k) for k in key_names)
        out: dict[int, dict] = {}
        for state_key in list(self._state):
            dest = route(tuple(state_key[1][p] for p in positions))
            if dest is None:
                continue
            out.setdefault(dest, {})[state_key] = self._state.pop(state_key)
            self.metrics.shrink_state()
        return out

    def install_keyed_state(
        self, key_names: tuple[str, ...], blob: Any
    ) -> None:
        # Must accumulate: tuples for a moved key may have reached this
        # replica between the install marker and the migrated partials
        # (abort re-installs race the same way), so merge, never replace.
        for state_key, incoming in blob.items():
            existing = self._state.get(state_key)
            if existing is None:
                self._state[state_key] = incoming
                self.metrics.grow_state()
                continue
            existing.count += incoming.count
            existing.total += incoming.total
            for attr in ("maximum", "minimum"):
                theirs = getattr(incoming, attr)
                if theirs is None:
                    continue
                ours = getattr(existing, attr)
                if ours is None:
                    setattr(existing, attr, theirs)
                elif attr == "maximum":
                    setattr(existing, attr, max(ours, theirs))
                else:
                    setattr(existing, attr, min(ours, theirs))
            existing.partial_emitted = (
                existing.partial_emitted or incoming.partial_emitted
            )

    # -------------------------------------------------------------- windows

    @property
    def tumbling(self) -> bool:
        return self.slide == self.width

    def window_ids(self, timestamp: float) -> range:
        """All window ids containing ``timestamp``."""
        offset = timestamp - self.origin
        last = math.floor(offset / self.slide)
        first = math.floor((offset - self.width) / self.slide) + 1
        return range(max(first, 0), last + 1)

    def window_bounds(self, window_id: int) -> tuple[float, float]:
        """Half-open ``[start, end)`` timestamp range of a window."""
        start = self.origin + window_id * self.slide
        return start, start + self.width

    def window_interval_atom(self, window_atom: Atom) -> Atom | None:
        """Translate an atom over window ids to one over timestamps.

        Window ids grow monotonically with time, so exact / bounded window
        constraints translate to timestamp ranges.  Returns None for
        shapes that have no sound translation.
        """
        shape = ConstraintShape.of_atom(window_atom)
        if shape is ConstraintShape.EXACT and window_atom.is_point:
            start, end = self.window_bounds(int(window_atom.point_value()))
            return Interval(start, end, hi_inclusive=False)
        if shape is ConstraintShape.EXACT and isinstance(window_atom, InSet):
            ids = sorted(window_atom.values)
            if ids and all(isinstance(w, int) for w in ids) and (
                ids == list(range(ids[0], ids[-1] + 1))
            ):
                start, _ = self.window_bounds(ids[0])
                _, end = self.window_bounds(ids[-1])
                return Interval(start, end, hi_inclusive=False)
            return None  # non-contiguous window sets have no single range
        if shape is ConstraintShape.UPPER:
            if isinstance(window_atom, AtMost):
                _, end = self.window_bounds(int(window_atom.value))
                return LessThan(end)
            if isinstance(window_atom, LessThan):
                _, end = self.window_bounds(int(window_atom.value) - 1)
                return LessThan(end)
        if shape is ConstraintShape.LOWER:
            if isinstance(window_atom, AtLeast):
                start, _ = self.window_bounds(int(window_atom.value))
                return AtLeast(start)
            if isinstance(window_atom, GreaterThan):
                start, _ = self.window_bounds(int(window_atom.value) + 1)
                return AtLeast(start)
        if shape is ConstraintShape.RANGE and isinstance(window_atom, Interval):
            lo_start, _ = self.window_bounds(int(window_atom.lo))
            _, hi_end = self.window_bounds(int(window_atom.hi))
            return Interval(lo_start, hi_end, hi_inclusive=False)
        return None

    # ---------------------------------------------------------------- data

    def _group_key(self, tup: StreamTuple) -> tuple:
        return tuple(tup.values[i] for i in self._group_indices)

    def _output_values(
        self, window_id: int, group: tuple, value: float | None
    ) -> list:
        return [window_id, *group, value]

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        timestamp = float(tup.values[self._ts_index])
        group = self._group_key(tup)
        value = (
            None if self._value_index is None
            else tup.values[self._value_index]
        )
        for window_id in self.window_ids(timestamp):
            if self._window_guarded(window_id, group):
                self.windows_skipped += 1
                continue
            key = (window_id, group)
            state = self._state.get(key)
            if state is None:
                state = _WindowState()
                self._state[key] = state
                self.metrics.grow_state()
            state.add(None if value is None else float(value))

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: accumulate a run of tuples with hoisted lookups.

        Pure state accumulation (windows emit on punctuation or finish,
        never here), so bulk processing is trivially order-safe; the win
        over per-element dispatch is hoisting the attribute-index,
        state-dict and guard lookups out of the loop.  Window guards can
        only change via control (feedback) or punctuation, both of which
        are delivered outside a batch run, so the hoisted guard check is
        exact.  Subclasses overriding :meth:`on_tuple` keep element-wise
        dispatch.
        """
        if type(self).on_tuple is not WindowAggregate.on_tuple:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        ts_index = self._ts_index
        value_index = self._value_index
        group_indices = self._group_indices
        state = self._state
        metrics = self.metrics
        window_ids = self.window_ids
        guarded = self._window_guarded if self._window_guards else None
        for tup in batch:
            values = tup.values
            timestamp = float(values[ts_index])
            group = tuple(values[i] for i in group_indices)
            value = None if value_index is None else values[value_index]
            for window_id in window_ids(timestamp):
                if guarded is not None and guarded(window_id, group):
                    self.windows_skipped += 1
                    continue
                key = (window_id, group)
                window_state = state.get(key)
                if window_state is None:
                    window_state = _WindowState()
                    state[key] = window_state
                    metrics.grow_state()
                window_state.add(None if value is None else float(value))

    def _window_guarded(self, window_id: int, group: tuple) -> bool:
        if not self._window_guards:
            return False
        probe = self._output_values(window_id, group, None)
        return any(g.matches(probe) for g in self._window_guards)

    # ---------------------------------------------------------- punctuation

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Close windows the punctuation completes; forward progress.

        Handles the two practically relevant punctuation families:
        timestamp progress (``[..., <=T, ...]``) and group completion
        (exact atoms on group attributes).
        """
        pattern = punct.pattern
        constrained = set(pattern.constrained_indices())
        ts_atom = pattern.atoms[self._ts_index]
        group_positions = set(self._group_indices)
        if constrained and constrained <= {self._ts_index}:
            bound = self._upper_bound_of(ts_atom)
            if bound is not None:
                self._close_windows_before(bound)
            return
        if constrained and constrained <= group_positions:
            self._close_groups(pattern)
            return
        if not constrained:  # end-of-stream punctuation
            self._close_all()
            self.emit_punctuation(
                Punctuation(
                    Pattern.all_wildcards(
                        len(self.output_schema), schema=self.output_schema
                    ),
                    source=self.name,
                )
            )

    @staticmethod
    def _upper_bound_of(atom: Atom) -> float | None:
        if isinstance(atom, AtMost):
            return float(atom.value)
        if isinstance(atom, LessThan):
            return float(atom.value)
        return None

    def _close_windows_before(self, bound: float) -> None:
        """Emit and purge every window whose end lies at or before bound.

        Progress punctuation ``[window <= k]`` is emitted whenever the
        closed-window bound *advances*, even when no state closed: the
        input watermark guarantees no tuple below ``bound`` is still
        coming, so the assertion is sound either way.  (Emitting only on
        actual closes would starve a shard replica that happens to own
        no group in the region -- its :class:`~repro.operators.partition.
        ShardMerge` siblings would wait forever; see ``docs/sharding.md``.)
        """
        closable = [
            key for key in self._state
            if self.window_bounds(key[0])[1] <= bound
        ]
        for key in sorted(closable):
            self._emit_window(key)
        last_closed = math.floor(
            (bound - self.origin - self.width) / self.slide
        )
        if last_closed >= 0 and (
            self._last_punct_window is None
            or last_closed > self._last_punct_window
        ):
            self._last_punct_window = int(last_closed)
            self._expire_window_guards(int(last_closed))
            self.emit_punctuation(
                Punctuation(
                    Pattern.single(
                        self.output_schema,
                        self.window_name,
                        AtMost(int(last_closed)),
                    ),
                    source=self.name,
                )
            )

    def _expire_window_guards(self, last_closed: int) -> None:
        """Drop internal window guards that can never fire again.

        A guard whose window atom admits no window id above
        ``last_closed`` is dead: those windows are closed and will not
        re-form.  This is the same predicate-state bound that
        :class:`~repro.core.guards.GuardSet` enforces via punctuation
        (paper section 4.4), applied to the aggregate's internal guards.
        """
        survivors = []
        future = GreaterThan(last_closed)
        for guard in self._window_guards:
            window_atom = guard.atoms[0]
            if window_atom.is_wildcard or not window_atom.is_disjoint(future):
                survivors.append(guard)
        self._window_guards = survivors

    def _close_groups(self, input_pattern: Pattern) -> None:
        """A group is complete on the input: close all its windows."""
        group_atoms = [input_pattern.atoms[i] for i in self._group_indices]
        closable = [
            key for key in self._state
            if all(a.matches(v) for a, v in zip(group_atoms, key[1]))
        ]
        for key in sorted(closable):
            self._emit_window(key)
        out_atoms: list[Atom] = [WILDCARD] * len(self.output_schema)
        for offset, atom in enumerate(group_atoms):
            out_atoms[1 + offset] = atom
        self.emit_punctuation(
            Punctuation(
                Pattern(out_atoms, schema=self.output_schema),
                source=self.name,
            )
        )

    def _close_all(self) -> None:
        for key in sorted(self._state):
            self._emit_window(key)

    def _emit_window(self, key: tuple[int, tuple]) -> None:
        state = self._state.pop(key, None)
        if state is None:
            return
        self.metrics.shrink_state()
        value = state.value(self.kind)
        result = StreamTuple(
            self.output_schema,
            self._output_values(key[0], key[1], value),
        )
        if self.emit_on_close:
            self.emit(result)
        else:
            self._result_buffer.append(result)

    def on_finish(self) -> None:
        self._close_all()
        self.flush_buffered()

    def flush_buffered(self) -> list[StreamTuple]:
        """Emit buffered results (poll-based mode, Example 4)."""
        flushed = self._result_buffer
        self._result_buffer = []
        for result in flushed:
            self.emit(result)
        if flushed:
            self.flush_outputs()
        return flushed

    def on_result_request(self, pattern: Pattern | None) -> None:
        """On-demand production: release buffered results, then forward."""
        if pattern is None:
            self.flush_buffered()
        else:
            keep: list[StreamTuple] = []
            for result in self._result_buffer:
                if pattern.matches(result):
                    self.emit(result)
                else:
                    keep.append(result)
            self._result_buffer = keep
        super().on_result_request(pattern)

    # ------------------------------------------------------------- feedback

    def _shape_split(
        self, pattern: Pattern
    ) -> tuple[bool, bool, ConstraintShape]:
        """(group/window constrained?, value constrained?, value shape)."""
        value_index = len(self.output_schema) - 1
        value_atom = pattern.atoms[value_index]
        constrained = set(pattern.constrained_indices())
        gw_constrained = bool(constrained - {value_index})
        return (
            gw_constrained,
            value_index in constrained,
            ConstraintShape.of_atom(value_atom),
        )

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        pattern = feedback.pattern
        gw_constrained, value_constrained, value_shape = (
            self._shape_split(pattern)
        )
        if self.exploit_level == 1 or (value_constrained and gw_constrained):
            # Level 1 (scheme F1), or mixed constraints outside Table 1:
            # guard the output only -- always correct, minimally invasive.
            self.output_guards.install(pattern, origin=feedback, at=self.now())
            return [ExploitAction.GUARD_OUTPUT]
        if value_constrained:
            return self._assumed_on_value(feedback, value_shape)
        return self._assumed_on_groups(feedback)

    # -- ¬[g, *] ------------------------------------------------------------

    def _assumed_on_groups(
        self, feedback: FeedbackPunctuation
    ) -> list[ExploitAction]:
        pattern = feedback.pattern
        actions = [ExploitAction.PURGE_STATE]
        purged = [
            key for key in self._state if self._key_matches(pattern, key)
        ]
        for key in purged:
            self._state.pop(key)
            self.metrics.shrink_state(purged=True)
        # Never accumulate guarded windows again (works for sliding too).
        self._window_guards.append(pattern)
        if self.tumbling:
            input_pattern = self._input_pattern_from_output(pattern)
            if input_pattern is not None:
                self.input_port(0).guards.install(
                    input_pattern, origin=feedback, at=self.now()
                )
                actions.append(ExploitAction.GUARD_INPUT)
        self.output_guards.install(pattern, origin=feedback, at=self.now())
        actions.append(ExploitAction.GUARD_OUTPUT)
        return actions

    def _key_matches(self, pattern: Pattern, key: tuple[int, tuple]) -> bool:
        return pattern.matches(self._output_values(key[0], key[1], None))

    # -- ¬[*, θa] ------------------------------------------------------------

    def _assumed_on_value(
        self, feedback: FeedbackPunctuation, shape: ConstraintShape
    ) -> list[ExploitAction]:
        pattern = feedback.pattern
        value_atom = pattern.atoms[-1]
        certain = (
            shape is ConstraintShape.LOWER
            and self.kind in AggregateKind.MONOTONE_INCREASING
        ) or (
            shape is ConstraintShape.UPPER
            and self.kind in AggregateKind.MONOTONE_DECREASING
        )
        self.output_guards.install(pattern, origin=feedback, at=self.now())
        if not certain:
            return [ExploitAction.GUARD_OUTPUT]
        # G <- pairs whose partial aggregate already satisfies the bound;
        # their final value is certain to match, so they are dead weight.
        group_set = [
            key for key, state in self._state.items()
            if state.value(self.kind) is not None
            and value_atom.matches(state.value(self.kind))
        ]
        if not group_set:
            return [ExploitAction.GUARD_OUTPUT]
        for key in group_set:
            self._state.pop(key)
            self.metrics.shrink_state(purged=True)
        actions = [ExploitAction.PURGE_STATE, ExploitAction.GUARD_OUTPUT]
        port = self.input_port(0)
        relay_cap = 64
        for key in group_set[:relay_cap]:
            input_pattern = self._pair_input_pattern(key)
            if input_pattern is None:
                continue
            port.guards.install(input_pattern, origin=feedback, at=self.now())
            if ExploitAction.GUARD_INPUT not in actions:
                actions.append(ExploitAction.GUARD_INPUT)
            # State-dependent propagation of G (Table 1, row 3).
            self.metrics.feedback_relayed += 1
            self._send_upstream(
                0,
                feedback.propagated(
                    input_pattern, relayer=self.name, at=self.now()
                ),
            )
        # Stop matching windows from re-forming locally.
        for key in group_set:
            self._window_guards.append(
                Pattern.from_mapping(
                    self.output_schema,
                    {
                        self.window_name: key[0],
                        **{g: v for g, v in zip(self.group_by, key[1])},
                    },
                )
            )
        return actions

    def _pair_input_pattern(self, key: tuple[int, tuple]) -> Pattern | None:
        """Input pattern for one (window, group) pair: ts range ∧ group."""
        if not self.tumbling:
            return None  # a tuple belongs to several windows (Example 2)
        start, end = self.window_bounds(key[0])
        constraints: dict[str, Any] = {
            self.window_attribute: Interval(start, end, hi_inclusive=False)
        }
        for name, value in zip(self.group_by, key[1]):
            constraints[name] = Equals(value)
        return Pattern.from_mapping(self.input_schema, constraints)

    # -- relaying --------------------------------------------------------------

    def _input_pattern_from_output(self, pattern: Pattern) -> Pattern | None:
        """Translate an output pattern to the input schema when sound.

        Group atoms map positionally; a window atom maps to a timestamp
        range (tumbling windows only); value atoms are untranslatable.
        """
        value_index = len(self.output_schema) - 1
        atoms: list[Atom] = [WILDCARD] * len(self.input_schema)
        for out_pos in pattern.constrained_indices():
            if out_pos == value_index:
                return None
            if out_pos == 0:  # window id
                if not self.tumbling:
                    return None
                translated = self.window_interval_atom(pattern.atoms[0])
                if translated is None:
                    return None
                atoms[self._ts_index] = translated
                continue
            group_offset = out_pos - 1
            atoms[self._group_indices[group_offset]] = pattern.atoms[out_pos]
        result = Pattern(atoms, schema=self.input_schema)
        return None if result.is_all_wildcard else result

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        input_pattern = self._input_pattern_from_output(feedback.pattern)
        if input_pattern is None:
            return {}
        return {
            0: feedback.propagated(
                input_pattern, relayer=self.name, at=self.now()
            )
        }

    # -- demanded ---------------------------------------------------------------

    def on_demanded(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Unblock: emit current partials for matching open windows now."""
        pattern = feedback.pattern
        emitted = False
        for key, state in list(self._state.items()):
            if state.partial_emitted:
                continue
            value = state.value(self.kind)
            candidate = self._output_values(key[0], key[1], value)
            probe = self._output_values(key[0], key[1], None)
            if pattern.matches(candidate) or pattern.matches(probe):
                state.partial_emitted = True
                self.emit(
                    StreamTuple(self.output_schema, candidate)
                )
                emitted = True
        # Buffered (poll-mode) results matching the demand ship as well.
        keep: list[StreamTuple] = []
        for result in self._result_buffer:
            if pattern.matches(result):
                self.emit(result)
                emitted = True
            else:
                keep.append(result)
        self._result_buffer = keep
        if emitted:
            self.flush_outputs()  # "now" means now, not at page boundary
        return [ExploitAction.EMIT_PARTIAL] if emitted else []
