"""PARTITION / SHARD MERGE: key-partitioned replica execution.

Data-parallel operator replication over a key-partitioned stream is the
standard scaling move in stream engines (Röger & Mayer's parallelization
survey calls it *data parallelism with key-based splitting*); AsterixDB's
data feeds apply the same shape to partitioned ingestion with
per-partition flow control.  This module supplies the two boundary
operators of a *shard region*:

* :class:`Partition` -- one input, N output lanes.  Each tuple routes to
  the lane chosen by a **stable** hash of its key attributes (stable
  across processes, so simulator runs stay exactly reproducible and lane
  assignment is testable).  Punctuation is broadcast to every lane: a
  completed subset of the input is complete on every partition of it.
* :class:`ShardMerge` -- N same-schema inputs, one output.  Tuples
  interleave order-tolerantly; a region punctuation passes downstream
  only once **every** replica has declared it (otherwise a late tuple
  from a sibling replica could violate the emitted punctuation).

Control semantics across the shard boundary:

* **feedback broadcast** -- feedback arriving at the merge relays to all
  replicas (every output attribute originates in every input, so the
  identity mapping is safe on each); feedback arriving at the partition
  from one replica is enacted immediately when its pattern pins the
  partition key to values routed to that replica (**key routing**), and
  otherwise only once every replica has declared a covering region
  (**agreement**, exactly DUPLICATE's reconciliation rule -- the other
  replicas' subsets are disjoint but their consumers are the same merged
  downstream, so a lone replica's feedback proves nothing about them);
* **per-lane flow control** -- a pause from one congested replica stalls
  only that lane: the partition stashes traffic routed to the paused
  lane (bounded by ``stash_limit``) and keeps feeding the siblings,
  becoming fully paused -- and therefore transitively pausing the source
  -- only when a stash fills up.  See
  :meth:`~repro.engine.runtime.RuntimeCore.is_paused`;
* **unknown control kinds** forward hop-by-hop through both operators
  via :meth:`~repro.operators.base.Operator.forward_control`, so a
  control message the shard boundary predates still crosses it.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.feedback import (
    FeedbackIntent,
    FeedbackPunctuation,
    RebalancePunctuation,
)
from repro.core.roles import ExploitAction
from repro.elasticity.rebalance import (
    RebalanceCommand,
    RebalanceRecord,
    RebalanceRouter,
    key_digest,
)
from repro.errors import PlanError
from repro.operators.base import Operator, OutputEdge
from repro.operators.union import Union
from repro.punctuation.atoms import Equals, InSet
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.control import (
    ControlMessage,
    ControlMessageKind,
    Direction,
)
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Partition", "ShardMerge"]

#: Give up key-routing when a pattern's key atoms expand to more combos.
_MAX_KEY_COMBOS = 64


class Partition(Operator):
    """Route each tuple to one of ``fanout`` lanes by key hash.

    Parameters
    ----------
    key:
        Attribute name (or sequence of names) hashed to choose the lane.
    fanout:
        Number of output lanes; must match the number of connected
        outputs at start-up.
    stash_limit:
        Per-lane bound on elements absorbed while that lane is paused;
        at the bound the partition reports :meth:`holding_pressure` and
        the pause becomes transitive toward the source.
    """

    feedback_aware = True
    lane_flow_control = True

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        key: str | Sequence[str],
        fanout: int,
        stash_limit: int = 256,
        **kwargs: Any,
    ) -> None:
        if fanout < 1:
            raise PlanError(f"{name}: fanout must be >= 1, got {fanout}")
        if stash_limit < 1:
            raise PlanError(
                f"{name}: stash_limit must be >= 1, got {stash_limit}"
            )
        key_tuple = (key,) if isinstance(key, str) else tuple(key)
        if not key_tuple:
            raise PlanError(f"{name}: partition key must name an attribute")
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        self.key = key_tuple
        self.fanout = int(fanout)
        self.stash_limit = int(stash_limit)
        self._key_indices = tuple(schema.index_of(k) for k in key_tuple)
        self._paused_lanes: set[int] = set()
        self._stash: dict[int, list] = {}
        # Assumed patterns declared per output edge (agreement protocol).
        self._declared: dict[int, list[Pattern]] = {}
        self._relay_pending: Pattern | None = None
        self.tuples_stashed = 0
        self.lane_pauses = 0
        self.key_routed_feedback = 0
        # -- elastic rebalancing (armed by the ElasticController) --------
        #: Slot routing table; None keeps plain ``digest % fanout``
        #: hashing (and the hot path branch-free), byte-identically.
        self._router: RebalanceRouter | None = None
        #: Tuples routed through each slot (the controller's skew signal).
        self._slot_loads: list[int] = []
        self._rebalance_epoch = 0
        #: The in-flight rebalance's ledger (cut issued, ack pending).
        self._pending_rebalance: RebalanceRecord | None = None
        self._next_router: RebalanceRouter | None = None
        #: Moved-slot tuples held between cut and install, arrival order.
        self._rebalance_stash: list = []
        #: Punctuation held during the migration window: broadcasting it
        #: mid-migration could close windows at a destination lane before
        #: the migrated partial state arrives.
        self._held_puncts: list = []
        self.rebalances_applied = 0
        self.rebalances_completed = 0
        self.rebalances_aborted = 0
        self.keys_migrated = 0
        self.tuples_held = 0

    def snapshot_state(self) -> dict[str, Any]:
        # ``_declared`` is keyed by ``id(edge)`` -- remap to lane indices,
        # which survive pickling and a rebuilt plan.
        declared: dict[int, list[Pattern]] = {}
        for lane, edge in enumerate(self.outputs):
            patterns = self._declared.get(id(edge))
            if patterns:
                declared[lane] = list(patterns)
        state = super().snapshot_state()
        state["paused_lanes"] = set(self._paused_lanes)
        state["stash"] = {
            lane: list(pending) for lane, pending in self._stash.items()
        }
        state["declared"] = declared
        state["relay_pending"] = self._relay_pending
        state["tuples_stashed"] = self.tuples_stashed
        state["lane_pauses"] = self.lane_pauses
        state["key_routed_feedback"] = self.key_routed_feedback
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._paused_lanes = set(state["paused_lanes"])
        self._stash = {
            lane: list(pending) for lane, pending in state["stash"].items()
        }
        self._declared = {}
        for lane, patterns in state["declared"].items():
            edge = self.outputs[lane]
            self._declared[id(edge)] = list(patterns)
        self._relay_pending = state["relay_pending"]
        self.tuples_stashed = state["tuples_stashed"]
        self.lane_pauses = state["lane_pauses"]
        self.key_routed_feedback = state["key_routed_feedback"]

    # ------------------------------------------------------------------ lanes

    def lane_of_key(self, *key_values: Any) -> int:
        """Stable lane for concrete key values (crc32, not ``hash``).

        ``hash`` is salted per process (``PYTHONHASHSEED``); crc32 over
        the canonicalised values' reprs keeps routing identical across
        runs and hosts, which the deterministic simulator's
        reproducibility promise -- and every test pinning a tuple to a
        lane -- relies on.  Numerically equal keys route identically
        (``1``/``1.0``/``True``); key values must have value-based reprs
        (str, numbers, tuples of those) -- an address-based default repr
        would route nondeterministically across processes.

        With elastic rebalancing armed the digest routes through the
        slot table instead; the identity table makes that exactly
        ``digest % fanout``, so arming alone changes nothing.
        """
        digest = key_digest(key_values)
        router = self._router
        if router is None:
            return digest % self.fanout
        return router.table[digest % router.num_slots]

    def lane_of(self, tup: StreamTuple) -> int:
        """The lane ``tup`` routes to."""
        values = tup.values
        return self.lane_of_key(*(values[i] for i in self._key_indices))

    def _slot_lane_of(self, tup: StreamTuple) -> tuple[int | None, int]:
        """Route one tuple: ``(slot, lane)``; slot is None when unarmed."""
        values = tup.values
        digest = key_digest(values[i] for i in self._key_indices)
        router = self._router
        if router is None:
            return None, digest % self.fanout
        slot = digest % router.num_slots
        return slot, router.table[slot]

    # -- elastic surface read by the controller / metrics rollup ---------

    def enable_rebalancing(self, router: RebalanceRouter) -> None:
        """Arm runtime re-partitioning with ``router`` (controller call)."""
        if router.num_slots % self.fanout != 0:
            raise PlanError(
                f"{self.name}: slot count {router.num_slots} must be a "
                f"multiple of the fanout {self.fanout}"
            )
        if not router.lanes_in_use <= set(range(self.fanout)):
            raise PlanError(
                f"{self.name}: routing table names lanes outside "
                f"0..{self.fanout - 1}"
            )
        self._router = router
        self._slot_loads = [0] * router.num_slots

    @property
    def router(self) -> RebalanceRouter | None:
        return self._router

    @property
    def slot_loads(self) -> list[int]:
        return self._slot_loads

    @property
    def lanes_in_use(self) -> frozenset[int]:
        """Lanes the live table can route to (all lanes when unarmed)."""
        if self._router is None:
            return frozenset(range(self.fanout))
        return self._router.lanes_in_use

    @property
    def rebalance_pending(self) -> bool:
        return self._pending_rebalance is not None

    def on_start(self) -> None:
        if len(self.outputs) != self.fanout:
            raise PlanError(
                f"{self.name}: fanout is {self.fanout} but "
                f"{len(self.outputs)} output(s) are connected"
            )

    # ------------------------------------------------------------------ data

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        slot, lane = self._slot_lane_of(tup)
        if slot is not None:
            self._slot_loads[slot] += 1
            record = self._pending_rebalance
            if record is not None and slot in record.moved:
                # A moved key's old lane already cut its state; its new
                # lane has not installed it yet.  Hold the tuple here --
                # routing it either way would split the key's history.
                if self.output_guards.blocks(tup):
                    self.metrics.output_guard_drops += 1
                    return
                self.metrics.tuples_out += 1
                self._rebalance_stash.append(tup)
                self.tuples_held += 1
                return
        if lane not in self._paused_lanes:
            self.emit_to(lane, tup)
            return
        if self.output_guards.blocks(tup):
            self.metrics.output_guard_drops += 1
            return
        self.metrics.tuples_out += 1
        self._stash.setdefault(lane, []).append(tup)
        self.tuples_stashed += 1

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: bucket the run by lane, one bulk emit per lane.

        Subclasses overriding :meth:`on_tuple` fall back to element-wise
        dispatch, as does a migration window in progress -- the shortcut
        is only valid for plain table routing.
        """
        if (
            type(self).on_tuple is not Partition.on_tuple
            or self._pending_rebalance is not None
        ):
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        buckets: dict[int, list] = {}
        if self._router is None:
            for tup in batch:
                buckets.setdefault(self.lane_of(tup), []).append(tup)
        else:
            loads = self._slot_loads
            for tup in batch:
                slot, lane = self._slot_lane_of(tup)
                loads[slot] += 1
                buckets.setdefault(lane, []).append(tup)
        blocks = (
            self.output_guards.blocks if len(self.output_guards) else None
        )
        for lane, routed in buckets.items():
            if lane not in self._paused_lanes:
                self.emit_many_to(lane, routed)
                continue
            if blocks is not None:
                kept = []
                for tup in routed:
                    if blocks(tup):
                        self.metrics.output_guard_drops += 1
                    else:
                        kept.append(tup)
                routed = kept
            if routed:
                self.metrics.tuples_out += len(routed)
                self._stash.setdefault(lane, []).extend(routed)
                self.tuples_stashed += len(routed)

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Broadcast punctuation to every lane, respecting paused stashes.

        A completed input subset is complete on every partition of it, so
        each lane gets the punctuation.  A paused lane's copy joins that
        lane's stash *behind* the stashed tuples -- emitting it directly
        would let the punctuation overtake earlier tuples it covers,
        which is exactly the disorder punctuation forbids.
        """
        self.output_guards.expire_with(punct)
        self.metrics.punctuations_out += 1
        if self._pending_rebalance is not None:
            # Held until install: broadcasting now could close a window
            # at a destination lane before the migrated partial state
            # for keys the punctuation covers has arrived there.
            self._held_puncts.append(punct)
            return
        self._broadcast_element(punct)

    def _put_lane(self, lane: int, element: Any) -> None:
        """Queue ``element`` on one lane, or its stash while paused."""
        if lane in self._paused_lanes:
            self._stash.setdefault(lane, []).append(element)
        else:
            self.outputs[lane].queue.put(element)

    def _broadcast_element(self, element: Any) -> None:
        """Queue ``element`` on every lane, respecting paused stashes."""
        for lane in range(len(self.outputs)):
            self._put_lane(lane, element)

    def on_finish(self) -> None:
        # The stream is over.  A cut whose ack can no longer arrive must
        # roll back first, then ship every stash (the queues close right
        # after this hook, and the consumers will drain them) so no
        # element is stranded behind a pause that can no longer lift.
        record = self._pending_rebalance
        if record is not None:
            self._abort_rebalance(record)
        for lane in list(self._stash):
            self._flush_stash(lane)

    # -------------------------------------------------- per-lane flow control

    def holding_pressure(self) -> bool:
        if len(self._rebalance_stash) >= self.stash_limit:
            return True
        return any(
            len(stash) >= self.stash_limit
            for stash in self._stash.values()
        )

    def _lane_of_edge(
        self, punct: Any, from_edge: OutputEdge | None
    ) -> int | None:
        if from_edge is not None and from_edge in self.outputs:
            return self.outputs.index(from_edge)
        edge_name = getattr(punct, "edge", None)
        for index, edge in enumerate(self.outputs):
            if edge.queue.name == edge_name:
                return index
        return None

    def on_pause(self, punct: Any, from_edge: OutputEdge | None) -> None:
        lane = self._lane_of_edge(punct, from_edge)
        if lane is not None:
            self._paused_lanes.add(lane)
            self.lane_pauses += 1

    def on_resume(self, punct: Any, from_edge: OutputEdge | None) -> None:
        lane = self._lane_of_edge(punct, from_edge)
        if lane is None:
            return
        self._paused_lanes.discard(lane)
        self._flush_stash(lane)

    def _flush_stash(self, lane: int) -> None:
        pending = self._stash.pop(lane, None)
        if not pending:
            return
        queue = self.outputs[lane].queue
        for element in pending:  # guards/counters applied at stash time
            queue.put(element)

    # ------------------------------------------------- elastic rebalancing

    def rebalance_migratable(self, key_names: tuple[str, ...]) -> str | None:
        # A nested shard region's keys are split across *its* lanes; the
        # outer migration cannot collect them through this partition.
        return "nested shard regions cannot migrate through their partition"

    def on_rebalance_control(self, message: ControlMessage) -> bool:
        """Partition's half of the rebalance control protocol.

        Downstream carries the controller's :class:`RebalanceCommand`
        (phase one starts here); upstream carries the merge's completed
        cut acknowledgement -- the shared :class:`RebalanceRecord` --
        relayed hop-by-hop back through the lanes (phase two lands
        here).
        """
        payload = message.payload
        if message.direction is Direction.DOWNSTREAM and isinstance(
            payload, RebalanceCommand
        ):
            self._begin_rebalance(payload)
            return True
        if message.direction is Direction.UPSTREAM and isinstance(
            payload, RebalanceRecord
        ):
            self._complete_rebalance(payload)
            return True
        return False

    def _shard_group(self) -> Any | None:
        plan = getattr(self.runtime, "plan", None)
        if plan is None:
            return None
        for group in plan.shard_groups:
            if group.partition == self.name:
                return group
        return None

    def _begin_rebalance(self, command: RebalanceCommand) -> None:
        """Phase one: cut.  Freeze moved keys; ask the lanes to pack up.

        The CUT marker broadcasts to *every* lane (a moved slot's source
        lane must extract, and marker arrival doubles as the region-wide
        barrier the merge counts).  From this point until the install,
        tuples routed to a moved slot are held in ``_rebalance_stash``
        and all punctuation is held, so no lane sees traffic for a key
        whose state is in flight.
        """
        router = self._router
        if router is None or self.finished or self._pending_rebalance:
            return
        group = self._shard_group()
        if group is None:
            return
        moves = {
            slot: dest
            for slot, dest in command.assignments
            if 0 <= slot < router.num_slots
            and 0 <= dest < self.fanout
            and router.table[slot] != dest
        }
        if not moves:
            return
        positions: dict[str, tuple[int, int]] = {}
        for lane_index, lane_members in enumerate(group.lanes):
            for member_position, member in enumerate(lane_members):
                positions[member] = (lane_index, member_position)
        self._rebalance_epoch += 1
        record = RebalanceRecord(
            self._rebalance_epoch,
            key_names=self.key,
            moved=moves,
            num_slots=router.num_slots,
            positions=positions,
        )
        self._pending_rebalance = record
        self._next_router = router.with_assignments(moves)
        self.rebalances_applied += 1
        self._broadcast_element(
            RebalancePunctuation(
                record.epoch, "cut",
                issuer=self.name, record=record, issued_at=self.now(),
            )
        )

    def _complete_rebalance(self, record: RebalanceRecord) -> None:
        """Phase two: install.  Swap tables and release what was held.

        Runs when the merge's acknowledgement (every lane saw the cut,
        so every deposit is in the ledger) arrives back at this seat.
        INSTALL markers go out first, then the held tuples re-routed
        through the *new* table -- each lands behind the marker that
        makes its lane claim the key's state -- and finally the held
        punctuation, broadcast behind everything it could cover.
        """
        if record is not self._pending_rebalance or record.aborted:
            return
        self._broadcast_element(
            RebalancePunctuation(
                record.epoch, "install",
                issuer=self.name, record=record, issued_at=self.now(),
            )
        )
        self._router = self._next_router
        self._next_router = None
        self._pending_rebalance = None
        stash, self._rebalance_stash = self._rebalance_stash, []
        for tup in stash:  # guards/counters applied at stash time
            self._put_lane(self.lane_of(tup), tup)
        held, self._held_puncts = self._held_puncts, []
        for punct in held:
            self._broadcast_element(punct)
        self.rebalances_completed += 1
        self.keys_migrated += record.keys_moved

    def _abort_rebalance(self, record: RebalanceRecord) -> None:
        """Roll back a cut whose acknowledgement can no longer arrive.

        ``abort`` flips the shared record under its lock, so a deposit
        still racing in from a lane member fails and re-installs at its
        source; RESTORE markers then make every seat reclaim its own
        deposits.  The held tuples re-route through the *old* table --
        behind the restore markers, so state is back before they land.
        """
        record.abort()
        self.rebalances_aborted += 1
        self._broadcast_element(
            RebalancePunctuation(
                record.epoch, "restore",
                issuer=self.name, record=record, issued_at=self.now(),
            )
        )
        self._pending_rebalance = None
        self._next_router = None
        stash, self._rebalance_stash = self._rebalance_stash, []
        for tup in stash:  # guards/counters applied at stash time
            self._put_lane(self.lane_of(tup), tup)
        held, self._held_puncts = self._held_puncts, []
        for punct in held:
            self._broadcast_element(punct)

    # -------------------------------------------------------------- feedback

    def _lanes_for_pattern(self, pattern: Pattern) -> set[int] | None:
        """Lanes a pattern's tuples can route to, or None when unbounded.

        Bounded only when every key attribute is pinned to finitely many
        values (the payload carries the partition key); a wildcard or
        range atom on any key attribute routes everywhere.
        """
        combos: list[tuple] = [()]
        for index in self._key_indices:
            atom = pattern.atoms[index]
            if isinstance(atom, InSet):
                members: tuple = tuple(atom.values)
            elif isinstance(atom, Equals):
                members = (atom.value,)
            elif not atom.is_wildcard and atom.is_point:
                members = (atom.point_value(),)
            else:
                return None
            combos = [c + (v,) for c in combos for v in members]
            if len(combos) > _MAX_KEY_COMBOS:
                return None
        return {self.lane_of_key(*combo) for combo in combos}

    def _agreed_patterns(
        self, pattern: Pattern, from_edge: OutputEdge | None
    ) -> list[Pattern]:
        """DUPLICATE-style reconciliation across all lanes.

        Returns the non-empty intersections of ``pattern`` with regions
        every *other* lane has declared -- the subsets no replica's
        consumer needs.  (The merged downstream consumer is shared, so a
        broadcast feedback reaches every lane and agreement converges.)

        Declarations are kept *frontier-style* (UNION's rule): a new
        pattern drops the declarations it subsumes and is skipped when
        already covered, so a long-running plan's periodic feedback keeps
        the per-lane lists -- and the intersection scan -- bounded by the
        number of maximal regions, not the number of feedback events.
        """
        if len(self.outputs) <= 1:
            return [pattern]
        if from_edge is None:
            return []  # unknown origin: be conservative
        declared = self._declared.setdefault(id(from_edge), [])
        if not any(seen.subsumes(pattern) for seen in declared):
            declared[:] = [p for p in declared if not pattern.subsumes(p)]
            declared.append(pattern)
        agreed = [pattern]
        for edge in self.outputs:
            if edge is from_edge:
                continue
            other_declared = self._declared.get(id(edge), [])
            narrowed: list[Pattern] = []
            for candidate in agreed:
                for other in other_declared:
                    joint = candidate.intersect(other)
                    if joint is not None:
                        narrowed.append(joint)
            agreed = narrowed
            if not agreed:
                return []
        return agreed

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        edge = self.feedback_source_edge
        lane = (
            self.outputs.index(edge)
            if edge is not None and edge in self.outputs else None
        )
        routed = self._lanes_for_pattern(feedback.pattern)
        if routed is not None and lane is not None and routed <= {lane}:
            # Key-routed: the pattern's tuples only ever reach the issuing
            # replica, so its feedback alone licenses full exploitation.
            self.key_routed_feedback += 1
            self.input_port(0).guards.install(
                feedback.pattern, origin=feedback, at=self.now()
            )
            self.output_guards.install(
                feedback.pattern, origin=feedback, at=self.now()
            )
            self._relay_pending = feedback.pattern
            return [ExploitAction.GUARD_INPUT, ExploitAction.GUARD_OUTPUT]
        agreed = self._agreed_patterns(feedback.pattern, edge)
        if not agreed:
            return []  # null response until all replicas agree
        actions: list[ExploitAction] = []
        for pattern in agreed:
            if self.output_guards.install(
                pattern, origin=feedback, at=self.now()
            ):
                actions.append(ExploitAction.GUARD_OUTPUT)
            self.input_port(0).guards.install(
                pattern, origin=feedback, at=self.now()
            )
            actions.append(ExploitAction.GUARD_INPUT)
        # relay_feedback carries one pattern; additional agreed regions
        # propagate directly (the aggregate's state-dependent propagation
        # precedent), so the source stops producing *all* of them.
        if self.relay_enabled:
            for pattern in agreed[1:]:
                self.metrics.feedback_relayed += 1
                self._send_upstream(
                    0,
                    feedback.propagated(
                        pattern.with_schema(self.output_schema)
                        if self.output_schema is not None else pattern,
                        relayer=self.name,
                        at=self.now(),
                    ),
                )
        self._relay_pending = agreed[0]
        return actions

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        """Relay assumed feedback only once key-routed or agreed.

        Desired/demanded feedback is a pure production hint (it never
        changes the final result), so it relays upstream directly via the
        identity mapping.
        """
        if feedback.intent is not FeedbackIntent.ASSUMED:
            return super().relay_feedback(feedback)
        pending, self._relay_pending = self._relay_pending, None
        if pending is None:
            return {}
        return {
            0: feedback.propagated(
                pending.with_schema(self.output_schema)
                if self.output_schema is not None else pending,
                relayer=self.name,
                at=self.now(),
            )
        }


class ShardMerge(Union):
    """Order-tolerant fan-in closing a shard region.

    Inherits UNION's data path (interleave; batch forwarding) and its
    feedback broadcast (the identity mapping relays feedback to *every*
    replica).  The punctuation rule is UNION's alignment specialised to
    replicas: a region punctuation is **held** until every lane has
    declared a covering region and then emitted exactly once downstream
    -- the lane whose declaration completes the region carries it out.
    ``regions_held`` / ``regions_released`` count both halves for the
    shard metrics rollup.
    """

    def __init__(
        self, name: str, schema: Schema, *, arity: int, **kwargs: Any
    ) -> None:
        if arity < 1:
            raise PlanError(f"{name}: merge arity must be >= 1, got {arity}")
        super().__init__(name, schema, arity=arity, **kwargs)
        self.regions_held = 0
        self.regions_released = 0
        # Rebalance barrier bookkeeping: marker arrivals per epoch.
        self._rebalance_cuts: dict[int, int] = {}
        self._rebalance_installs: dict[int, int] = {}
        self.rebalances_completed = 0

    def snapshot_state(self) -> dict[str, Any]:
        # Chains Union's snapshot: the per-lane frontiers are what decides
        # whether a held region releases, so they must survive recovery.
        state = super().snapshot_state()
        state["regions_held"] = self.regions_held
        state["regions_released"] = self.regions_released
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.regions_held = state["regions_held"]
        self.regions_released = state["regions_released"]

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        self._advance_frontier(port_index, punct.pattern)
        if self._covered_everywhere(punct.pattern, exclude=port_index):
            self.regions_released += 1
            self.emit_punctuation(punct)
        else:
            self.regions_held += 1

    def _on_rebalance_marker(
        self, port_index: int, marker: RebalancePunctuation
    ) -> None:
        """The merge is the region's barrier: count, acknowledge, absorb.

        A CUT marker on every lane proves each member between partition
        and merge has processed its cut -- all migrating state sits in
        the record's deposit ledger -- so the arity'th arrival sends the
        record back upstream as a ``REBALANCE`` acknowledgement (relayed
        hop-by-hop to the partition, which then installs).  INSTALL
        arrivals re-arm this epoch's bookkeeping; RESTORE (an aborted
        cut) just clears it.  No marker crosses the merge: rebalancing
        is interior to the shard region, invisible downstream.
        """
        record = marker.record
        if marker.phase == "cut":
            seen = self._rebalance_cuts.get(marker.epoch, 0) + 1
            self._rebalance_cuts[marker.epoch] = seen
            if seen < self.n_inputs:
                return
            del self._rebalance_cuts[marker.epoch]
            if record is None or record.aborted:
                return
            port = self.input_port(0)
            port.control.send(
                ControlMessage(
                    ControlMessageKind.REBALANCE,
                    Direction.UPSTREAM,
                    payload=record,
                    sender=self.name,
                    sent_at=self.now(),
                )
            )
            if port.producer is not None:
                self.runtime.notify_control(port.producer, at=self.now())
            return
        if marker.phase == "install":
            seen = self._rebalance_installs.get(marker.epoch, 0) + 1
            self._rebalance_installs[marker.epoch] = seen
            if seen == self.n_inputs:
                del self._rebalance_installs[marker.epoch]
                self.rebalances_completed += 1
            return
        # restore: the epoch never completed; drop its cut counts.
        self._rebalance_cuts.pop(marker.epoch, None)
