"""PARTITION / SHARD MERGE: key-partitioned replica execution.

Data-parallel operator replication over a key-partitioned stream is the
standard scaling move in stream engines (Röger & Mayer's parallelization
survey calls it *data parallelism with key-based splitting*); AsterixDB's
data feeds apply the same shape to partitioned ingestion with
per-partition flow control.  This module supplies the two boundary
operators of a *shard region*:

* :class:`Partition` -- one input, N output lanes.  Each tuple routes to
  the lane chosen by a **stable** hash of its key attributes (stable
  across processes, so simulator runs stay exactly reproducible and lane
  assignment is testable).  Punctuation is broadcast to every lane: a
  completed subset of the input is complete on every partition of it.
* :class:`ShardMerge` -- N same-schema inputs, one output.  Tuples
  interleave order-tolerantly; a region punctuation passes downstream
  only once **every** replica has declared it (otherwise a late tuple
  from a sibling replica could violate the emitted punctuation).

Control semantics across the shard boundary:

* **feedback broadcast** -- feedback arriving at the merge relays to all
  replicas (every output attribute originates in every input, so the
  identity mapping is safe on each); feedback arriving at the partition
  from one replica is enacted immediately when its pattern pins the
  partition key to values routed to that replica (**key routing**), and
  otherwise only once every replica has declared a covering region
  (**agreement**, exactly DUPLICATE's reconciliation rule -- the other
  replicas' subsets are disjoint but their consumers are the same merged
  downstream, so a lone replica's feedback proves nothing about them);
* **per-lane flow control** -- a pause from one congested replica stalls
  only that lane: the partition stashes traffic routed to the paused
  lane (bounded by ``stash_limit``) and keeps feeding the siblings,
  becoming fully paused -- and therefore transitively pausing the source
  -- only when a stash fills up.  See
  :meth:`~repro.engine.runtime.RuntimeCore.is_paused`;
* **unknown control kinds** forward hop-by-hop through both operators
  via :meth:`~repro.operators.base.Operator.forward_control`, so a
  control message the shard boundary predates still crosses it.
"""

from __future__ import annotations

from typing import Any, Sequence
from zlib import crc32

from repro.core.feedback import FeedbackIntent, FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.errors import PlanError
from repro.operators.base import Operator, OutputEdge
from repro.operators.union import Union
from repro.punctuation.atoms import Equals, InSet
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Partition", "ShardMerge"]

#: Give up key-routing when a pattern's key atoms expand to more combos.
_MAX_KEY_COMBOS = 64


def _canonical_key_value(value: Any) -> Any:
    """Collapse numeric types that compare equal onto one routing form.

    Python's value equality makes ``1 == 1.0 == True`` -- an unsharded
    group-by treats them as one group -- so routing must too, or a mixed
    int/float key column would split one logical group across replicas
    and the merged output would carry two partial aggregates for it.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class Partition(Operator):
    """Route each tuple to one of ``fanout`` lanes by key hash.

    Parameters
    ----------
    key:
        Attribute name (or sequence of names) hashed to choose the lane.
    fanout:
        Number of output lanes; must match the number of connected
        outputs at start-up.
    stash_limit:
        Per-lane bound on elements absorbed while that lane is paused;
        at the bound the partition reports :meth:`holding_pressure` and
        the pause becomes transitive toward the source.
    """

    feedback_aware = True
    lane_flow_control = True

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        key: str | Sequence[str],
        fanout: int,
        stash_limit: int = 256,
        **kwargs: Any,
    ) -> None:
        if fanout < 1:
            raise PlanError(f"{name}: fanout must be >= 1, got {fanout}")
        if stash_limit < 1:
            raise PlanError(
                f"{name}: stash_limit must be >= 1, got {stash_limit}"
            )
        key_tuple = (key,) if isinstance(key, str) else tuple(key)
        if not key_tuple:
            raise PlanError(f"{name}: partition key must name an attribute")
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        self.key = key_tuple
        self.fanout = int(fanout)
        self.stash_limit = int(stash_limit)
        self._key_indices = tuple(schema.index_of(k) for k in key_tuple)
        self._paused_lanes: set[int] = set()
        self._stash: dict[int, list] = {}
        # Assumed patterns declared per output edge (agreement protocol).
        self._declared: dict[int, list[Pattern]] = {}
        self._relay_pending: Pattern | None = None
        self.tuples_stashed = 0
        self.lane_pauses = 0
        self.key_routed_feedback = 0

    def snapshot_state(self) -> dict[str, Any]:
        # ``_declared`` is keyed by ``id(edge)`` -- remap to lane indices,
        # which survive pickling and a rebuilt plan.
        declared: dict[int, list[Pattern]] = {}
        for lane, edge in enumerate(self.outputs):
            patterns = self._declared.get(id(edge))
            if patterns:
                declared[lane] = list(patterns)
        state = super().snapshot_state()
        state["paused_lanes"] = set(self._paused_lanes)
        state["stash"] = {
            lane: list(pending) for lane, pending in self._stash.items()
        }
        state["declared"] = declared
        state["relay_pending"] = self._relay_pending
        state["tuples_stashed"] = self.tuples_stashed
        state["lane_pauses"] = self.lane_pauses
        state["key_routed_feedback"] = self.key_routed_feedback
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._paused_lanes = set(state["paused_lanes"])
        self._stash = {
            lane: list(pending) for lane, pending in state["stash"].items()
        }
        self._declared = {}
        for lane, patterns in state["declared"].items():
            edge = self.outputs[lane]
            self._declared[id(edge)] = list(patterns)
        self._relay_pending = state["relay_pending"]
        self.tuples_stashed = state["tuples_stashed"]
        self.lane_pauses = state["lane_pauses"]
        self.key_routed_feedback = state["key_routed_feedback"]

    # ------------------------------------------------------------------ lanes

    def lane_of_key(self, *key_values: Any) -> int:
        """Stable lane for concrete key values (crc32, not ``hash``).

        ``hash`` is salted per process (``PYTHONHASHSEED``); crc32 over
        the canonicalised values' reprs keeps routing identical across
        runs and hosts, which the deterministic simulator's
        reproducibility promise -- and every test pinning a tuple to a
        lane -- relies on.  Numerically equal keys route identically
        (``1``/``1.0``/``True``); key values must have value-based reprs
        (str, numbers, tuples of those) -- an address-based default repr
        would route nondeterministically across processes.
        """
        digest = 0
        for value in key_values:
            digest = crc32(
                repr(_canonical_key_value(value)).encode("utf-8"), digest
            )
        return digest % self.fanout

    def lane_of(self, tup: StreamTuple) -> int:
        """The lane ``tup`` routes to."""
        values = tup.values
        return self.lane_of_key(*(values[i] for i in self._key_indices))

    def on_start(self) -> None:
        if len(self.outputs) != self.fanout:
            raise PlanError(
                f"{self.name}: fanout is {self.fanout} but "
                f"{len(self.outputs)} output(s) are connected"
            )

    # ------------------------------------------------------------------ data

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        lane = self.lane_of(tup)
        if lane not in self._paused_lanes:
            self.emit_to(lane, tup)
            return
        if self.output_guards.blocks(tup):
            self.metrics.output_guard_drops += 1
            return
        self.metrics.tuples_out += 1
        self._stash.setdefault(lane, []).append(tup)
        self.tuples_stashed += 1

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: bucket the run by lane, one bulk emit per lane.

        Subclasses overriding :meth:`on_tuple` fall back to element-wise
        dispatch -- the shortcut is only valid for plain hash routing.
        """
        if type(self).on_tuple is not Partition.on_tuple:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        buckets: dict[int, list] = {}
        for tup in batch:
            buckets.setdefault(self.lane_of(tup), []).append(tup)
        blocks = (
            self.output_guards.blocks if len(self.output_guards) else None
        )
        for lane, routed in buckets.items():
            if lane not in self._paused_lanes:
                self.emit_many_to(lane, routed)
                continue
            if blocks is not None:
                kept = []
                for tup in routed:
                    if blocks(tup):
                        self.metrics.output_guard_drops += 1
                    else:
                        kept.append(tup)
                routed = kept
            if routed:
                self.metrics.tuples_out += len(routed)
                self._stash.setdefault(lane, []).extend(routed)
                self.tuples_stashed += len(routed)

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Broadcast punctuation to every lane, respecting paused stashes.

        A completed input subset is complete on every partition of it, so
        each lane gets the punctuation.  A paused lane's copy joins that
        lane's stash *behind* the stashed tuples -- emitting it directly
        would let the punctuation overtake earlier tuples it covers,
        which is exactly the disorder punctuation forbids.
        """
        self.output_guards.expire_with(punct)
        self.metrics.punctuations_out += 1
        for lane, edge in enumerate(self.outputs):
            if lane in self._paused_lanes:
                self._stash.setdefault(lane, []).append(punct)
            else:
                edge.queue.put(punct)

    def on_finish(self) -> None:
        # The stream is over: ship every stash (the queues close right
        # after this hook, and the consumers will drain them) so no
        # element is stranded behind a pause that can no longer lift.
        for lane in list(self._stash):
            self._flush_stash(lane)

    # -------------------------------------------------- per-lane flow control

    def holding_pressure(self) -> bool:
        return any(
            len(stash) >= self.stash_limit
            for stash in self._stash.values()
        )

    def _lane_of_edge(
        self, punct: Any, from_edge: OutputEdge | None
    ) -> int | None:
        if from_edge is not None and from_edge in self.outputs:
            return self.outputs.index(from_edge)
        edge_name = getattr(punct, "edge", None)
        for index, edge in enumerate(self.outputs):
            if edge.queue.name == edge_name:
                return index
        return None

    def on_pause(self, punct: Any, from_edge: OutputEdge | None) -> None:
        lane = self._lane_of_edge(punct, from_edge)
        if lane is not None:
            self._paused_lanes.add(lane)
            self.lane_pauses += 1

    def on_resume(self, punct: Any, from_edge: OutputEdge | None) -> None:
        lane = self._lane_of_edge(punct, from_edge)
        if lane is None:
            return
        self._paused_lanes.discard(lane)
        self._flush_stash(lane)

    def _flush_stash(self, lane: int) -> None:
        pending = self._stash.pop(lane, None)
        if not pending:
            return
        queue = self.outputs[lane].queue
        for element in pending:  # guards/counters applied at stash time
            queue.put(element)

    # -------------------------------------------------------------- feedback

    def _lanes_for_pattern(self, pattern: Pattern) -> set[int] | None:
        """Lanes a pattern's tuples can route to, or None when unbounded.

        Bounded only when every key attribute is pinned to finitely many
        values (the payload carries the partition key); a wildcard or
        range atom on any key attribute routes everywhere.
        """
        combos: list[tuple] = [()]
        for index in self._key_indices:
            atom = pattern.atoms[index]
            if isinstance(atom, InSet):
                members: tuple = tuple(atom.values)
            elif isinstance(atom, Equals):
                members = (atom.value,)
            elif not atom.is_wildcard and atom.is_point:
                members = (atom.point_value(),)
            else:
                return None
            combos = [c + (v,) for c in combos for v in members]
            if len(combos) > _MAX_KEY_COMBOS:
                return None
        return {self.lane_of_key(*combo) for combo in combos}

    def _agreed_patterns(
        self, pattern: Pattern, from_edge: OutputEdge | None
    ) -> list[Pattern]:
        """DUPLICATE-style reconciliation across all lanes.

        Returns the non-empty intersections of ``pattern`` with regions
        every *other* lane has declared -- the subsets no replica's
        consumer needs.  (The merged downstream consumer is shared, so a
        broadcast feedback reaches every lane and agreement converges.)

        Declarations are kept *frontier-style* (UNION's rule): a new
        pattern drops the declarations it subsumes and is skipped when
        already covered, so a long-running plan's periodic feedback keeps
        the per-lane lists -- and the intersection scan -- bounded by the
        number of maximal regions, not the number of feedback events.
        """
        if len(self.outputs) <= 1:
            return [pattern]
        if from_edge is None:
            return []  # unknown origin: be conservative
        declared = self._declared.setdefault(id(from_edge), [])
        if not any(seen.subsumes(pattern) for seen in declared):
            declared[:] = [p for p in declared if not pattern.subsumes(p)]
            declared.append(pattern)
        agreed = [pattern]
        for edge in self.outputs:
            if edge is from_edge:
                continue
            other_declared = self._declared.get(id(edge), [])
            narrowed: list[Pattern] = []
            for candidate in agreed:
                for other in other_declared:
                    joint = candidate.intersect(other)
                    if joint is not None:
                        narrowed.append(joint)
            agreed = narrowed
            if not agreed:
                return []
        return agreed

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        edge = self.feedback_source_edge
        lane = (
            self.outputs.index(edge)
            if edge is not None and edge in self.outputs else None
        )
        routed = self._lanes_for_pattern(feedback.pattern)
        if routed is not None and lane is not None and routed <= {lane}:
            # Key-routed: the pattern's tuples only ever reach the issuing
            # replica, so its feedback alone licenses full exploitation.
            self.key_routed_feedback += 1
            self.input_port(0).guards.install(
                feedback.pattern, origin=feedback, at=self.now()
            )
            self.output_guards.install(
                feedback.pattern, origin=feedback, at=self.now()
            )
            self._relay_pending = feedback.pattern
            return [ExploitAction.GUARD_INPUT, ExploitAction.GUARD_OUTPUT]
        agreed = self._agreed_patterns(feedback.pattern, edge)
        if not agreed:
            return []  # null response until all replicas agree
        actions: list[ExploitAction] = []
        for pattern in agreed:
            if self.output_guards.install(
                pattern, origin=feedback, at=self.now()
            ):
                actions.append(ExploitAction.GUARD_OUTPUT)
            self.input_port(0).guards.install(
                pattern, origin=feedback, at=self.now()
            )
            actions.append(ExploitAction.GUARD_INPUT)
        # relay_feedback carries one pattern; additional agreed regions
        # propagate directly (the aggregate's state-dependent propagation
        # precedent), so the source stops producing *all* of them.
        if self.relay_enabled:
            for pattern in agreed[1:]:
                self.metrics.feedback_relayed += 1
                self._send_upstream(
                    0,
                    feedback.propagated(
                        pattern.with_schema(self.output_schema)
                        if self.output_schema is not None else pattern,
                        relayer=self.name,
                        at=self.now(),
                    ),
                )
        self._relay_pending = agreed[0]
        return actions

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        """Relay assumed feedback only once key-routed or agreed.

        Desired/demanded feedback is a pure production hint (it never
        changes the final result), so it relays upstream directly via the
        identity mapping.
        """
        if feedback.intent is not FeedbackIntent.ASSUMED:
            return super().relay_feedback(feedback)
        pending, self._relay_pending = self._relay_pending, None
        if pending is None:
            return {}
        return {
            0: feedback.propagated(
                pending.with_schema(self.output_schema)
                if self.output_schema is not None else pending,
                relayer=self.name,
                at=self.now(),
            )
        }


class ShardMerge(Union):
    """Order-tolerant fan-in closing a shard region.

    Inherits UNION's data path (interleave; batch forwarding) and its
    feedback broadcast (the identity mapping relays feedback to *every*
    replica).  The punctuation rule is UNION's alignment specialised to
    replicas: a region punctuation is **held** until every lane has
    declared a covering region and then emitted exactly once downstream
    -- the lane whose declaration completes the region carries it out.
    ``regions_held`` / ``regions_released`` count both halves for the
    shard metrics rollup.
    """

    def __init__(
        self, name: str, schema: Schema, *, arity: int, **kwargs: Any
    ) -> None:
        if arity < 1:
            raise PlanError(f"{name}: merge arity must be >= 1, got {arity}")
        super().__init__(name, schema, arity=arity, **kwargs)
        self.regions_held = 0
        self.regions_released = 0

    def snapshot_state(self) -> dict[str, Any]:
        # Chains Union's snapshot: the per-lane frontiers are what decides
        # whether a held region releases, so they must survive recovery.
        state = super().snapshot_state()
        state["regions_held"] = self.regions_held
        state["regions_released"] = self.regions_released
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.regions_held = state["regions_held"]
        self.regions_released = state["regions_released"]

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        self._advance_frontier(port_index, punct.pattern)
        if self._covered_everywhere(punct.pattern, exclude=port_index):
            self.regions_released += 1
            self.emit_punctuation(punct)
        else:
            self.regions_held += 1
