"""Map: stateless per-tuple transformation with declared lineage.

A Map applies a pure function to each tuple.  Because feedback relaying
needs to know which output attributes are exact copies of input attributes
(Definition 2 -- a predicate on a *computed* value cannot be translated
upstream), Map takes an explicit :class:`~repro.stream.schema.SchemaMapping`;
helper :meth:`Map.extending` covers the common case of carrying the input
schema and appending computed attributes (e.g. deriving a window/period id
from a timestamp).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Attribute, AttributeOrigin, Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Map"]


class Map(Operator):
    """Emit ``fn(tuple)`` for each input tuple."""

    feedback_aware = True

    def __init__(
        self,
        name: str,
        mapping: SchemaMapping,
        fn: Callable[[StreamTuple], StreamTuple],
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name, mapping.output_schema, mapping=mapping, **kwargs
        )
        self.input_schema = mapping.input_schemas[0]
        self._fn = fn

    @classmethod
    def extending(
        cls,
        name: str,
        input_schema: Schema,
        new_attributes: Sequence[Attribute | tuple | str],
        compute: Callable[[StreamTuple], Sequence[Any]],
        **kwargs: Any,
    ) -> "Map":
        """Carry the input schema and append computed attributes.

        ``compute`` returns the values of the new attributes for one input
        tuple.  Carried attributes keep exact lineage (feedback on them
        relays upstream); computed attributes get none.
        """
        extras = Schema(new_attributes)
        output_schema = input_schema.concat(extras)
        mapping = SchemaMapping(
            output_schema,
            (input_schema,),
            {
                attr.name: (AttributeOrigin(0, attr.name, exact=True),)
                for attr in input_schema
            },
        )

        def fn(tup: StreamTuple) -> StreamTuple:
            return StreamTuple(
                output_schema, tup.values + tuple(compute(tup))
            )

        return cls(name, mapping, fn, **kwargs)

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self.emit(self._fn(tup))

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: apply the function over the run, emit in bulk."""
        fn = self._fn
        self.emit_many([fn(t) for t in batch])

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        """Forward a punctuation widened onto carried attributes only.

        Atoms on input attributes that map exactly to output attributes
        survive; anything else is dropped from the forwarded pattern (a
        constraint on a dropped attribute cannot be asserted about the
        output).  If nothing survives, the punctuation is absorbed.
        """
        out_schema = self.output_schema
        atoms = list(Pattern.all_wildcards(len(out_schema)).atoms)
        survived = False
        for in_pos in punct.pattern.constrained_indices():
            in_name = self.input_schema[in_pos].name
            if in_name in out_schema:
                atoms[out_schema.index_of(in_name)] = punct.pattern.atoms[in_pos]
                survived = True
            else:
                return  # constraint not representable downstream; absorb
        if survived:
            self.emit_punctuation(
                Punctuation(
                    Pattern(atoms, schema=out_schema), source=self.name
                )
            )

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Guard the input via back-mapped patterns where safe."""
        relayable = self.relay_feedback(feedback)
        if 0 in relayable:
            self.input_port(0).guards.install(
                relayable[0].pattern, origin=feedback, at=self.now()
            )
            return [ExploitAction.GUARD_INPUT]
        return super().on_assumed(feedback)
