"""DUPLICATE: broadcast one input to several consumers.

The paper singles DUPLICATE out in its correctness discussion (section
4.1): *"the operator's definition implies both output streams need to be
identical, hence exploiting an opportunity would either affect both outputs
or none."*

Consequently, assumed feedback from **one** consumer cannot be enacted
directly.  DUPLICATE accumulates the assumed regions declared by each
output edge and enacts (guards + relays) only the **intersection** across
all edges -- the subset that *no* consumer needs.  With a single consumer
the intersection degenerates to the feedback itself.
"""

from __future__ import annotations

from typing import Any

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.operators.base import Operator, OutputEdge
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Duplicate"]


class Duplicate(Operator):
    """Emit every input element on every output edge unchanged."""

    feedback_aware = True

    def __init__(self, name: str, schema: Schema, **kwargs: Any) -> None:
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        # Assumed patterns declared per output edge (keyed by identity).
        self._declared: dict[int, list[Pattern]] = {}

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self.emit(tup)

    def on_page(self, port_index: int, batch: list) -> None:
        """Batch path: one guard pass, one ``put_many`` per output edge.

        Subclasses that override :meth:`on_tuple` keep element-wise
        dispatch -- the batch shortcut is only valid for plain broadcast.
        """
        if type(self).on_tuple is not Duplicate.on_tuple:
            for tup in batch:
                self.on_tuple(port_index, tup)
            return
        self.emit_many(batch)

    # -- feedback reconciliation ---------------------------------------------

    def _agreed_patterns(self, pattern: Pattern, from_edge: OutputEdge | None) -> list[Pattern]:
        """Intersections of ``pattern`` with every other edge's declarations.

        Returns the non-empty intersections that are now unneeded by *all*
        consumers.  With one output edge, the pattern itself is agreed.
        """
        if len(self.outputs) <= 1:
            return [pattern]
        if from_edge is None:
            # Unknown origin: be conservative, nothing is agreed.
            return []
        self._declared.setdefault(id(from_edge), []).append(pattern)
        agreed = [pattern]
        for edge in self.outputs:
            if edge is from_edge:
                continue
            other_declared = self._declared.get(id(edge), [])
            narrowed: list[Pattern] = []
            for candidate in agreed:
                for other in other_declared:
                    joint = candidate.intersect(other)
                    if joint is not None:
                        narrowed.append(joint)
            agreed = narrowed
            if not agreed:
                return []
        return agreed

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        agreed = self._agreed_patterns(
            feedback.pattern, self.feedback_source_edge
        )
        if not agreed:
            return []  # null response until all consumers agree
        actions: list[ExploitAction] = []
        for pattern in agreed:
            if self.output_guards.install(
                pattern, origin=feedback, at=self.now()
            ):
                actions.append(ExploitAction.GUARD_OUTPUT)
            self.input_port(0).guards.install(
                pattern, origin=feedback, at=self.now()
            )
            actions.append(ExploitAction.GUARD_INPUT)
        self._agreed_pending = agreed
        return actions

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        """Relay only agreed (all-consumer) subsets upstream."""
        agreed = getattr(self, "_agreed_pending", None)
        self._agreed_pending = None
        if not agreed:
            return {}
        # Several agreed boxes cannot be sent as one conjunctive pattern;
        # relay the first and let subsequent consumer feedback cover the
        # rest incrementally (correct, if not maximal).
        return {
            0: feedback.propagated(
                agreed[0].with_schema(self.output_schema)
                if self.output_schema is not None
                else agreed[0],
                relayer=self.name,
                at=self.now(),
            )
        }
