"""Router: content-based splitting with per-output feedback semantics.

A Router sends each tuple to exactly one output, chosen by the first
matching route pattern (with an optional default output).  It is the
semantic counterpart of :class:`~repro.operators.duplicate.Duplicate` on
the feedback side, and the contrast is instructive:

* DUPLICATE's outputs are **identical**, so feedback from one consumer can
  only be enacted once *all* consumers agree (paper section 4.1);
* a Router's outputs are **disjoint**, so feedback from the consumer on
  output *i* concerns only tuples routed to *i* -- the router may enact
  ``feedback_pattern ∩ route_pattern`` immediately: an input guard on that
  intersection suppresses nothing any other consumer could ever see.

The imputation plan's DUPLICATE + σC/σ¬C pair (Figure 4a) can equivalently
be built as a Router with routes on the dirtiness predicate; the split
variants behave identically for data but the Router exploits feedback
without cross-consumer coordination.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.feedback import FeedbackPunctuation
from repro.core.roles import ExploitAction
from repro.errors import PlanError
from repro.operators.base import Operator
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema, SchemaMapping
from repro.stream.tuples import StreamTuple

__all__ = ["Router"]


class Router(Operator):
    """Route each tuple to the first output whose pattern matches it.

    ``routes`` maps output index -> route pattern, in priority order.
    Tuples matching no route go to ``default_output`` (or are dropped when
    it is None).  Punctuation is broadcast to every output: a completed
    input subset is complete on every routed partition of it.
    """

    feedback_aware = True

    def __init__(
        self,
        name: str,
        schema: Schema,
        routes: Sequence[Pattern],
        *,
        default_output: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name, schema, mapping=SchemaMapping.identity(schema), **kwargs
        )
        if not routes:
            raise PlanError("Router requires at least one route pattern")
        for route in routes:
            if route.arity != len(schema):
                raise PlanError(
                    f"route pattern {route!r} does not fit schema "
                    f"{schema.names}"
                )
        self.routes = list(routes)
        self.default_output = default_output
        self.unrouted_drops = 0

    # -- data --------------------------------------------------------------------

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        for output_index, route in enumerate(self.routes):
            if route.matches(tup):
                if output_index < len(self.outputs):
                    self.emit_to(output_index, tup)
                return
        if (
            self.default_output is not None
            and self.default_output < len(self.outputs)
        ):
            self.emit_to(self.default_output, tup)
        else:
            self.unrouted_drops += 1

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        self.emit_punctuation(punct)  # broadcast: complete on every branch

    # -- feedback -----------------------------------------------------------------

    def on_assumed(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Guard the intersection of the feedback with the sending route.

        Only tuples the issuing consumer could ever have seen are
        suppressed, so no agreement protocol is needed (unlike DUPLICATE).
        Feedback of unknown provenance falls back to the route-agnostic
        output guard.
        """
        edge = self.feedback_source_edge
        if edge is None or edge not in self.outputs:
            return super().on_assumed(feedback)
        output_index = self.outputs.index(edge)
        if output_index >= len(self.routes):
            # Feedback from the default output: tuples there match *no*
            # route, which a conjunctive pattern cannot express; stay with
            # the per-edge output guard (null-ish but correct).
            return super().on_assumed(feedback)
        scoped = feedback.pattern.intersect(self.routes[output_index])
        if scoped is None:
            return []  # the consumer never sees this subset: nothing to do
        self.input_port(0).guards.install(
            scoped, origin=feedback, at=self.now()
        )
        self._scoped_relay = scoped
        return [ExploitAction.GUARD_INPUT]

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        """Relay the route-scoped pattern, not the raw one.

        The raw pattern may cover tuples destined for other outputs whose
        consumers still want them; only the intersection is safe.
        """
        scoped = getattr(self, "_scoped_relay", None)
        self._scoped_relay = None
        if scoped is None:
            return {}
        return {
            0: feedback.propagated(
                scoped.with_schema(self.output_schema)
                if self.output_schema is not None else scoped,
                relayer=self.name,
                at=self.now(),
            )
        }
