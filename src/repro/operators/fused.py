"""FusedOperator: a chain of stateless stages collapsed into one operator.

The optimizer (``repro.optimizer``) rewrites a ``QueryPlan`` so that a run
of adjacent single-input stateless verbs -- SELECT / PROJECT / MAP /
PASSTHROUGH -- executes as *one* schedulable unit: a page crosses one
queue instead of N, and the stage functions apply in-page, back to back,
with no intermediate page assembly.

Fidelity is the design constraint, not a bolt-on.  The composite wraps the
*real* stage operator instances and replaces only their inter-stage
plumbing with synchronous shims:

* **data** -- a :class:`_LinkQueue` between stages dispatches ``put`` /
  ``put_many`` straight into the next stage's ``process_element`` /
  ``process_page``, so guard filtering, punctuation transforms (a
  PROJECT absorbing a lossy pattern, a MAP widening onto carried
  attributes) and guard expiry all run exactly the materialized chain's
  code;
* **control** -- a :class:`_LinkControl` carries feedback, result
  requests and unknown-kind forwards hop by hop through the stages (same
  per-stage exploit/relay hooks, same metrics), queued on the composite
  and pumped breadth-first so delivery *order* matches the materialized
  chain; at the head/tail the message is re-stamped and re-emitted on the
  composite's real ports;
* **checkpoints** -- ``CheckpointPunctuation`` markers are intercepted at
  the composite boundary by the inherited :class:`Operator` machinery
  (stages are stateless by the fusion criteria, so the composite's empty
  snapshot is exactly the union of the stages' empty snapshots), which
  keeps ``checkpoint_every=`` composing with ``optimize=True``;
* **flow control** -- engines pause/resume the composite as a unit; the
  internal links never buffer, so a paused composite holds exactly as
  many in-flight elements as a paused materialized chain's head.

Known, documented divergence: with ``control_latency > 0`` a message
crosses the composite in zero time (one boundary hop instead of N
internal hops); with the default latency of 0 delivery is identical.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.core.feedback import FeedbackPunctuation
from repro.errors import PlanError
from repro.operators.base import Operator, OutputEdge
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.control import ControlMessage, ControlMessageKind, Direction
from repro.stream.queues import DataQueue
from repro.stream.tuples import StreamTuple

__all__ = ["FusedOperator", "fused_name"]


def fused_name(stages: Sequence[Operator]) -> str:
    """The composite's deterministic plan name.

    Derived purely from the stage names so an optimized recovery run
    rebuilds the exact names of the optimized run that wrote the
    checkpoints (``CheckpointCoordinator.complete_epochs`` requires state
    per operator *name*).
    """
    return "+".join(stage.name for stage in stages)


class _StageRuntime:
    """The runtime surface stages see inside a composite.

    Clock and logs defer to the composite's live runtime; notifications
    are no-ops (internal links dispatch synchronously, so there is nothing
    to wake).  Deliberately *without* a ``checkpoints`` attribute: markers
    are handled at the composite boundary and must never be re-snapshotted
    per stage.
    """

    __slots__ = ("_fused",)

    def __init__(self, fused: "FusedOperator") -> None:
        self._fused = fused

    def now(self) -> float:
        return self._fused.now()

    @property
    def feedback_log(self) -> Any:
        return self._fused.runtime.feedback_log

    @property
    def output_log(self) -> Any:
        return self._fused.runtime.output_log

    def notify_control(self, operator: Operator, at: float | None = None) -> None:
        pass

    def notify_data(self, operator: Operator) -> None:
        pass


class _LinkQueue:
    """Synchronous data shim between two fused stages.

    Quacks like the producer side of a :class:`DataQueue` but hands every
    element straight to the consumer stage -- no page, no buffer, so a
    checkpoint cut at the composite boundary can never strand an element
    inside the composite.
    """

    __slots__ = ("name", "consumer")

    def __init__(self, name: str, consumer: Operator) -> None:
        self.name = name
        self.consumer = consumer

    def put(self, element: Any) -> bool:
        self.consumer.process_element(0, element)
        return False

    def put_many(self, elements: list) -> int:
        self.consumer.process_page(0, elements)
        return 0

    def flush(self) -> bool:
        return False

    def close(self) -> None:
        pass


class _TailQueue:
    """The last stage's output shim: deliver on the composite's real edges."""

    __slots__ = ("name", "fused")

    def __init__(self, name: str, fused: "FusedOperator") -> None:
        self.name = name
        self.fused = fused

    def put(self, element: Any) -> bool:
        if element.is_punctuation:
            self.fused.emit_punctuation(element)
        else:
            self.fused.emit(element)
        return False

    def put_many(self, elements: list) -> int:
        return self.fused.emit_many(elements)

    def flush(self) -> bool:
        self.fused.flush_outputs()
        return False

    def close(self) -> None:
        pass


class _LinkControl:
    """Control shim for one internal (or boundary) link.

    ``send`` enqueues the message on the composite's pending deque keyed
    with the stage it targets; the composite pumps the deque breadth-first
    after every entry point, so hop-by-hop delivery order matches the
    materialized chain.  ``producer``/``consumer`` are the link's two
    stages; ``None`` marks the composite boundary in that direction.
    """

    __slots__ = ("name", "fused", "producer", "consumer", "producer_edge")

    def __init__(
        self,
        name: str,
        fused: "FusedOperator",
        producer: Operator | None,
        consumer: Operator | None,
    ) -> None:
        self.name = name
        self.fused = fused
        self.producer = producer
        self.consumer = consumer
        #: The producer stage's output edge over this link (for
        #: ``receive_feedback(from_edge=...)`` fidelity); set after wiring.
        self.producer_edge: OutputEdge | None = None

    def send(self, message: ControlMessage) -> None:
        if message.direction is Direction.UPSTREAM:
            if self.producer is None:
                self.fused._boundary_upstream(message)
            else:
                self.fused._ctl_pending.append(
                    (self.producer, message, self.producer_edge)
                )
        else:
            if self.consumer is None:
                self.fused._boundary_downstream(message)
            else:
                self.fused._ctl_pending.append(
                    (self.consumer, message, None)
                )


class FusedOperator(Operator):
    """A pipeline of single-input stateless stages run as one operator.

    Construct with the stage instances in upstream-to-downstream order;
    every stage must be fully disconnected (the optimizer unwires them
    from the plan first).  The composite takes the head's input and the
    tail's output seat in the plan.
    """

    def __init__(self, stages: Sequence[Operator], **kwargs: Any) -> None:
        stages = tuple(stages)
        if len(stages) < 2:
            raise PlanError("FusedOperator needs at least two stages")
        for stage in stages:
            if stage.n_inputs != 1:
                raise PlanError(
                    f"fused stage {stage.name!r} has {stage.n_inputs} "
                    f"inputs; only single-input stages fuse"
                )
            if stage.outputs or any(p is not None for p in stage.inputs):
                raise PlanError(
                    f"fused stage {stage.name!r} is still wired; "
                    f"disconnect it from the plan first"
                )
        super().__init__(
            fused_name(stages), stages[-1].output_schema, **kwargs
        )
        #: The wrapped stages, upstream to downstream (public: renderers
        #: and the metrics rollup duck-type on this attribute).
        self.fused_stages: tuple[Operator, ...] = stages
        self._stages = stages
        self._head = stages[0]
        self._tail = stages[-1]
        # The composite answers feedback exactly as its tail would have:
        # a feedback-unaware tail (PassThrough) ignores and stops it,
        # matching the materialized chain.
        self.feedback_aware = self._tail.feedback_aware
        #: Pending internal control deliveries (stage, message, from_edge),
        #: pumped breadth-first -- the materialized chain's hop order.
        self._ctl_pending: deque = deque()
        self._wire_stages()

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self._stages)

    def stage_metrics(self) -> dict[str, Any]:
        """Per-stage metrics, the composite's folded report."""
        return {stage.name: stage.metrics for stage in self._stages}

    # ------------------------------------------------------------------ wiring

    def _wire_stages(self) -> None:
        head_ctl = _LinkControl(
            f"{self.name}::<head>", self, None, self._head
        )
        self._head.attach_input(
            0, DataQueue(f"{self.name}::<head>"), head_ctl, None
        )
        for producer, consumer in zip(self._stages, self._stages[1:]):
            link_name = f"{self.name}::{producer.name}->{consumer.name}"
            queue = _LinkQueue(link_name, consumer)
            control = _LinkControl(link_name, self, producer, consumer)
            edge = OutputEdge(queue, control, consumer, 0)
            control.producer_edge = edge
            producer.attach_output(edge)
            consumer.attach_input(0, queue, control, producer)
        tail_name = f"{self.name}::<tail>"
        tail_ctl = _LinkControl(tail_name, self, self._tail, None)
        tail_edge = OutputEdge(
            _TailQueue(tail_name, self), tail_ctl, self, 0
        )
        tail_ctl.producer_edge = tail_edge
        self._tail.attach_output(tail_edge)

    # ---------------------------------------------------------------- lifecycle

    def set_now(self, timestamp: float) -> None:
        self._now = timestamp
        for stage in self._stages:
            stage._now = timestamp

    def on_start(self) -> None:
        runtime = _StageRuntime(self)
        for stage in self._stages:
            stage.runtime = runtime
            stage._now = self._now
            stage.on_start()

    def on_finish(self) -> None:
        # Drive each stage's end-of-stream lifecycle in chain order, so a
        # stage's final emissions (none, for the stateless whitelist, but
        # the protocol stands) reach its successors before *their* finish.
        for stage in self._stages:
            stage._now = self._now
            port = stage.inputs[0]
            if port is not None:
                port.done = True
            stage.on_input_done(0)
            stage.on_finish()
            stage.finished = True
        self._pump_control()

    def on_run_aborted(self, error: BaseException) -> None:
        for stage in self._stages:
            if not stage.finished:
                stage.on_run_aborted(error)

    # ---------------------------------------------------------------- data path

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self._head.process_element(0, tup)
        if self._ctl_pending:
            self._pump_control()

    def on_page(self, port_index: int, batch: list) -> None:
        self._head.process_page(0, batch)
        if self._ctl_pending:
            self._pump_control()

    def on_punctuation(self, port_index: int, punct: Punctuation) -> None:
        self._head.process_element(0, punct)
        if self._ctl_pending:
            self._pump_control()

    # ------------------------------------------------------------- control path

    def _pump_control(self) -> None:
        """Deliver queued internal control, breadth-first.

        Mirrors ``RuntimeCore.drain_control``'s dispatch-by-kind, one
        stage hop per iteration; a delivery may enqueue the next hop.
        """
        pending = self._ctl_pending
        while pending:
            stage, message, from_edge = pending.popleft()
            stage.metrics.control_messages += 1
            stage._now = self._now
            if message.kind is ControlMessageKind.FEEDBACK and isinstance(
                message.payload, FeedbackPunctuation
            ):
                stage.receive_feedback(message.payload, from_edge=from_edge)
            elif message.kind is ControlMessageKind.RESULT_REQUEST:
                stage.on_result_request(message.payload)
            else:
                stage.forward_control(message)

    def _boundary_upstream(self, message: ControlMessage) -> None:
        """A stage's upstream send crossed the head: re-emit for real."""
        copy = ControlMessage(
            message.kind,
            message.direction,
            payload=message.payload,
            sender=self.name,
            sent_at=self.now(),
        )
        for port in self.inputs:
            if port is None:
                continue
            port.control.send(copy)
            if port.producer is not None:
                self.runtime.notify_control(port.producer, at=self.now())

    def _boundary_downstream(self, message: ControlMessage) -> None:
        """A stage's downstream send crossed the tail: re-emit for real."""
        copy = ControlMessage(
            message.kind,
            message.direction,
            payload=message.payload,
            sender=self.name,
            sent_at=self.now(),
        )
        for edge in self.outputs:
            edge.control.send(copy)
            self.runtime.notify_control(edge.consumer, at=self.now())

    def receive_feedback(
        self,
        feedback: FeedbackPunctuation,
        from_edge: OutputEdge | None = None,
    ) -> list:
        """Feedback enters at the tail and relays stage by stage.

        Each stage runs its own exploit hooks (input guards for SELECT,
        back-mapped guards for PROJECT/MAP, ignore-and-stop for a
        feedback-unaware PASSTHROUGH) and its own relay; whatever escapes
        the head leaves on the composite's real input ports.
        """
        self.feedback_source_edge = from_edge
        self.metrics.feedback_received += 1
        actions = self._tail.receive_feedback(feedback, from_edge=None)
        self._pump_control()
        return actions

    def on_result_request(self, pattern: Pattern | None) -> None:
        self._tail.on_result_request(pattern)
        self._pump_control()

    def forward_control(self, message: ControlMessage) -> None:
        """Unknown kinds traverse the stages as the materialized chain."""
        self.metrics.control_forwarded += 1
        entry = (
            self._tail
            if message.direction is Direction.UPSTREAM
            else self._head
        )
        entry.forward_control(message)
        self._pump_control()

    # ------------------------------------------------------- elastic rebalancing

    def rebalance_migratable(self, key_names: Sequence[str]) -> str | None:
        """Delegate to the stages: the composite migrates iff all do.

        The fusion whitelist is stateless, so every stage answers None
        today; the delegation keeps the composite honest should the
        whitelist ever widen.  Rebalance markers themselves are handled
        at the composite boundary by the inherited machinery -- the
        internal links never buffer, so boundary handling is exactly
        equivalent to the materialized chain's hop-by-hop sweep.
        """
        for stage in self._stages:
            reason = stage.rebalance_migratable(key_names)
            if reason is not None:
                return f"{stage.name}: {reason}"
        return None

    # ------------------------------------------------------------- flow control

    def on_pause(self, punct: Any, from_edge: OutputEdge | None) -> None:
        for stage in self._stages:
            stage.on_pause(punct, None)

    def on_resume(self, punct: Any, from_edge: OutputEdge | None) -> None:
        for stage in self._stages:
            stage.on_resume(punct, None)

    # ------------------------------------------------------------------- repr

    def __repr__(self) -> str:
        inner = " -> ".join(
            f"{s.name}:{type(s).__name__}" for s in self._stages
        )
        return f"FusedOperator({inner})"
