"""Fluent dataflow API (system S10 in DESIGN.md).

``Flow`` builds plans verb by verb and runs them on any engine registered
in :mod:`repro.engine.registry`::

    from repro.api import Flow, avg

    flow = Flow("demo")
    (flow.source(schema, timeline)
         .punctuate(on="ts", every=10.0)
         .where(lambda t: t["value"] >= 0.0)
         .window(avg("value"), by="sensor", width=10.0, on="ts")
         .collect("sink"))
    result = flow.run(engine="simulated")

The aggregate helpers (``avg``, ``count``, ``sum``, ``max``, ``min``)
shadow builtins by design, PySpark-functions style -- import them
qualified (``from repro import api; api.avg(...)``) or aliased if that
matters at your call site.
"""

from repro.api.aggregates import AggSpec, avg, count, max, min, sum
from repro.api.flow import Flow, StreamHandle
from repro.engine.registry import (
    available_engines,
    create_engine,
    engine_factory,
    register_engine,
    run_plan,
    unregister_engine,
)
from repro.errors import FlowError

__all__ = [
    "AggSpec",
    "Flow",
    "FlowError",
    "StreamHandle",
    "available_engines",
    "avg",
    "count",
    "create_engine",
    "engine_factory",
    "max",
    "min",
    "register_engine",
    "run_plan",
    "sum",
    "unregister_engine",
]
