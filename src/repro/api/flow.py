"""The fluent dataflow API: ``Flow`` builders compiling to ``QueryPlan``.

The paper's pitch is that feedback slots under a *declarative* surface
(section 3.3 sketches ``WITH PACE`` in SQL), but hand-wiring sources,
punctuators, operators and sinks takes dozens of lines per plan.  This
module is the construction/run surface on top of the operator library::

    from repro.api import Flow, avg

    flow = Flow("quickstart")
    (flow.source(schema, timeline)
         .punctuate(on="timestamp", every=10.0)
         .where(lambda t: t["value"] >= 0.0, tuple_cost=0.002)
         .window(avg("value"), by="sensor", width=10.0, on="timestamp")
         .collect("sink"))
    result = flow.run(engine="simulated")

Design rules:

* each verb (``where``, ``window``, ``pace``, ``split``, ``union``,
  ``join``, ...) wraps exactly one operator class and stores a *spec* --
  the operator is instantiated freshly on every :meth:`Flow.build`, so one
  flow can run repeatedly and on several engines (operators and engines
  are single-use; flows are not);
* :class:`QueryPlan` stays the stable IR underneath: ``build()`` emits a
  validated plan, and anything expressible by hand remains expressible
  (``apply``/``merge`` are the escape hatches for custom operators);
* engines are addressed **by name** through
  :mod:`repro.engine.registry`, so the ROADMAP's future backends run
  existing flows without touching this module;
* client behaviour -- feedback at time *t* on a named sink, polls,
  demands -- is declared on :meth:`Flow.run` rather than wired into
  example code.

Verbs accept per-operator cost kwargs (``tuple_cost=...``,
``control_cost=...``) so simulator experiments keep their cost models, a
``name=`` for stable operator naming, a per-edge ``page_size=``, and a
``configure=`` callable applied to each freshly built instance (for knobs
that are not constructor arguments, e.g. ``relay_enabled``).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Sequence

from repro.api.aggregates import AggSpec
from repro.engine.plan import (
    QueryPlan,
    ShardGroup,
    checkpoint_annotation,
    edge_annotation,
    render_describe,
    render_dot,
)
from repro.engine.registry import create_engine
from repro.engine.runtime import RunResult
from repro.errors import EngineError, FlowError
from repro.operators.base import Operator
from repro.operators.buffer import PriorityBuffer
from repro.operators.duplicate import Duplicate
from repro.operators.join import SymmetricHashJoin
from repro.operators.map import Map
from repro.operators.pace import Pace
from repro.operators.partition import Partition, ShardMerge
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.sink import (
    AwaitableSink,
    CollectSink,
    OnDemandSink,
    PushSink,
)
from repro.operators.source import (
    AsyncIterableSource,
    GeneratorSource,
    ListSource,
    PunctuatedSource,
)
from repro.operators.aggregate import WindowAggregate
from repro.operators.union import Union
from repro.punctuation.patterns import Pattern
from repro.stream.channels import Broadcast, Channel
from repro.stream.pages import DEFAULT_PAGE_SIZE
from repro.stream.schema import Attribute, Schema
from repro.stream.tuples import StreamTuple

__all__ = ["Flow", "StreamHandle"]


class _Node:
    """One stage of a flow: a name, an operator factory, its output schema."""

    __slots__ = (
        "name", "kind", "factory", "schema", "fanout_ok", "single_use",
        "configure", "consumed", "built", "source_args", "prototype",
        "type_name", "is_source", "op_type",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        factory: Callable[[], Operator],
        schema: Schema | None,
        *,
        fanout_ok: bool = False,
        single_use: bool = False,
        configure: Callable[[Operator], None] | None = None,
        prototype: Operator | None = None,
        type_name: str | None = None,
        is_source: bool | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        # Rendering metadata for describe()/to_dot(): recorded up front so
        # topology inspection never needs to build (and therefore never
        # spends a single-use instance).
        if type_name is None:
            type_name = (
                type(prototype).__name__ if prototype is not None
                else "Operator"
            )
        self.type_name = type_name
        #: Concrete operator class, kept after the prototype is consumed
        #: by a build -- describe(checkpoints=True) probes it for the
        #: snapshot-seam override.
        self.op_type = type(prototype) if prototype is not None else Operator
        if is_source is None:
            is_source = prototype is not None and prototype.n_inputs == 0
        self.is_source = is_source
        self.factory = factory
        self.schema = schema
        self.fanout_ok = fanout_ok
        self.single_use = single_use
        self.configure = configure
        self.consumed = 0          # times used as a producer
        self.built = False         # single-use instances build once
        self.source_args: tuple | None = None  # for punctuate()
        #: The instance built at verb time for validation; never wired,
        #: so the first build adopts it instead of paying a second
        #: construction (IMPUTE's archive, large timelines).
        self.prototype = prototype

    def make(self) -> Operator:
        if self.single_use:
            if self.built:
                raise FlowError(
                    f"stage {self.name!r} wraps a pre-built operator "
                    f"instance and was already built once; pass a factory "
                    f"(e.g. lambda: MyOperator(...)) to make the flow "
                    f"re-runnable"
                )
            self.built = True
            operator = self.factory()
        elif self.prototype is not None:
            operator, self.prototype = self.prototype, None
        else:
            operator = self.factory()
        if self.configure is not None:
            self.configure(operator)
        return operator


class _Edge:
    """One pending connection: producer node -> consumer node [port].

    ``capacity`` is the edge's queue bound (high-water mark); ``None``
    defers to the run-level ``queue_capacity`` default, if any.
    """

    __slots__ = ("producer", "consumer", "port", "page_size", "capacity")

    def __init__(
        self,
        producer: _Node,
        consumer: _Node,
        port: int,
        page_size: int,
        capacity: int | None = None,
    ) -> None:
        self.producer = producer
        self.consumer = consumer
        self.port = port
        self.page_size = page_size
        self.capacity = capacity


class StreamHandle:
    """A reference to one stage's output stream inside a :class:`Flow`.

    Handles are single-consumer: feeding the same handle into two verbs
    raises :class:`FlowError` (implicit broadcast would silently duplicate
    the stream without DUPLICATE's feedback reconciliation); use
    :meth:`split` for explicit fan-out.  Each branch handle returned by
    ``split(n)`` is itself single-consumer, so ``n`` bounds the fan-out.
    """

    __slots__ = ("flow", "_node", "_spent")

    def __init__(self, flow: "Flow", node: _Node) -> None:
        self.flow = flow
        self._node = node
        self._spent = False

    @property
    def name(self) -> str:
        """The operator name this handle's stage will carry in the plan."""
        return self._node.name

    @property
    def schema(self) -> Schema | None:
        """Output schema of this stage (for patterns and feedback)."""
        return self._node.schema

    def __repr__(self) -> str:
        names = self.schema.names if self.schema is not None else ()
        return f"StreamHandle({self.name!r}, schema={names})"

    # -- source refinement -------------------------------------------------------

    def punctuate(
        self, *, on: str, every: float, grace: float = 0.0
    ) -> "StreamHandle":
        """Interleave progress punctuation on attribute ``on``.

        Only valid directly on a :meth:`Flow.source` stage (punctuation is
        embedded at the input, NiagaraST-style): the pending list source
        becomes a :class:`PunctuatedSource` emitting ``[... <= boundary
        ...]`` every ``every`` units of ``on``, plus the final
        all-covering punctuation at end of stream.
        """
        node = self._node
        if node.source_args is None:
            raise FlowError(
                f"punctuate() applies to a plain source stage; "
                f"{node.name!r} is a {node.kind} stage"
            )
        if node.consumed:
            raise FlowError(
                f"punctuate() must precede downstream verbs on "
                f"{node.name!r}"
            )
        schema, timeline, op_kwargs = node.source_args
        name = node.name

        def factory() -> Operator:
            return PunctuatedSource(
                name, schema, timeline,
                punctuate_on=on, punctuation_interval=every, grace=grace,
                **op_kwargs,
            )

        prototype = factory()  # validate the punctuation args eagerly
        node.factory = factory
        node.prototype = prototype  # supersedes the plain-source prototype
        node.type_name = type(prototype).__name__
        node.op_type = type(prototype)
        node.kind = "punctuated-source"
        node.source_args = None
        return self

    # -- linear verbs -------------------------------------------------------------

    def where(
        self,
        predicate: Callable[[StreamTuple], bool] | Pattern,
        *,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Filter with a predicate or :class:`Pattern` (SELECT)."""
        schema = self._require_schema("where")
        return self.flow._derive(
            lambda name: Select(name, schema, predicate, **op_kwargs),
            name=name, base="where", kind="where", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    #: Alias for :meth:`where`, for callers who think in map/filter terms.
    filter = where

    def select(
        self,
        *attributes: str,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Project onto ``attributes`` in order (PROJECT)."""
        schema = self._require_schema("select")
        return self.flow._derive(
            lambda name: Project(name, schema, attributes, **op_kwargs),
            name=name, base="project", kind="select", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    def extend(
        self,
        new_attributes: Sequence[Attribute | tuple | str],
        compute: Callable[[StreamTuple], Sequence[Any]],
        *,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Carry the schema and append computed attributes (MAP)."""
        schema = self._require_schema("extend")
        return self.flow._derive(
            lambda name: Map.extending(
                name, schema, new_attributes, compute, **op_kwargs
            ),
            name=name, base="map", kind="extend", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    def window(
        self,
        spec: AggSpec,
        *,
        on: str,
        width: float,
        by: str | Sequence[str] = (),
        slide: float | None = None,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Windowed group aggregate (AVERAGE/COUNT/... over ``on``).

        ``spec`` comes from :mod:`repro.api.aggregates` (``avg("value")``,
        ``count()``, ...); ``by`` is one grouping attribute or a sequence.
        """
        if not isinstance(spec, AggSpec):
            raise FlowError(
                f"window() takes an AggSpec (avg(...), count(), ...), "
                f"got {spec!r}"
            )
        schema = self._require_schema("window")
        group_by = (by,) if isinstance(by, str) else tuple(by)
        return self.flow._derive(
            lambda name: WindowAggregate(
                name, schema,
                kind=spec.kind,
                window_attribute=on,
                width=width,
                slide=slide,
                value_attribute=spec.attribute,
                group_by=group_by,
                **op_kwargs,
            ),
            name=name, base="window", kind="window", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    def buffer(
        self,
        *,
        capacity: int = 64,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Insert a :class:`PriorityBuffer` (desired-feedback reordering)."""
        schema = self._require_schema("buffer")
        return self.flow._derive(
            lambda name: PriorityBuffer(
                name, schema, capacity=capacity, **op_kwargs
            ),
            name=name, base="buffer", kind="buffer", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    def apply(
        self,
        operator: Operator | Callable[[], Operator],
        *,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
    ) -> "StreamHandle":
        """Pipe through a custom unary operator (the escape hatch).

        Pass a zero-argument factory to keep the flow re-runnable; a
        pre-built instance is accepted but makes the flow single-build.
        """
        return self.flow._attach_custom(
            operator, inputs=(self,), page_size=page_size,
            queue_capacity=queue_capacity, configure=configure,
        )

    # -- fan-out / fan-in ---------------------------------------------------------

    def split(
        self,
        n: int = 2,
        *,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> tuple["StreamHandle", ...]:
        """Broadcast through an explicit DUPLICATE; returns ``n`` handles.

        The handles share one DUPLICATE stage, so assumed feedback from
        the branches is reconciled (intersection across consumers) exactly
        as the paper's section 4.1 requires.
        """
        if n < 1:
            raise FlowError(f"split() needs n >= 1, got {n}")
        schema = self._require_schema("split")
        handle = self.flow._derive(
            lambda name: Duplicate(name, schema, **op_kwargs),
            name=name, base="duplicate", kind="split", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure, fanout_ok=True,
        )
        return tuple(
            StreamHandle(self.flow, handle._node) for _ in range(n)
        )

    def shard(
        self,
        n: int,
        *,
        key: str | Sequence[str],
        pipeline: Callable[..., "StreamHandle"],
        name: str | None = None,
        merge_name: str | None = None,
        stash_limit: int = 256,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Replicate a sub-pipeline ``n`` ways over a key-partitioned stream.

        ``pipeline`` is a callable building one replica: it receives a
        lane's :class:`StreamHandle` (and, if it takes a second
        positional argument, the lane index) and returns the replica's
        output handle.  The region compiles to a
        :class:`~repro.operators.partition.Partition` hashing ``key``
        across ``n`` lanes and a punctuation-aligning
        :class:`~repro.operators.partition.ShardMerge` fanning back in::

            (flow.source(schema, timeline)
                 .punctuate(on="ts", every=10.0)
                 .shard(4, key="sensor",
                        pipeline=lambda lane: lane
                            .where(expensive)
                            .window(avg("v"), by="sensor",
                                    on="ts", width=10.0))
                 .collect("sink"))

        With ``n=1`` the pipeline is applied inline -- no partition, no
        merge -- so the degenerate shard compiles to a plan byte-identical
        to the unsharded one.  For ``n>1`` the region is recorded as a
        :class:`~repro.engine.plan.ShardGroup` in the compiled plan's IR
        (rendered by ``describe()``/``to_dot()``, rolled up per lane by
        the runtime's skew report).  Feedback, punctuation and pause/
        resume flow control cross the region boundary as described in
        ``docs/sharding.md``: broadcast (or key-routed) across all
        replicas, with per-lane backpressure at the partitioner.
        """
        schema = self._require_schema("shard")
        if n < 1:
            raise FlowError(f"shard() needs n >= 1, got {n}")
        if not callable(pipeline):
            raise FlowError(
                f"shard() needs a pipeline callable building one "
                f"replica, got {pipeline!r}"
            )
        try:
            positional = [
                p for p in inspect.signature(pipeline).parameters.values()
                if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            ]
            wants_index = len(positional) >= 2
        except (TypeError, ValueError):  # builtins, odd callables
            wants_index = False

        def replicate(lane: "StreamHandle", index: int) -> "StreamHandle":
            out = pipeline(lane, index) if wants_index else pipeline(lane)
            if not isinstance(out, StreamHandle) or out.flow is not self.flow:
                raise FlowError(
                    "shard() pipeline must return a StreamHandle of "
                    "this flow"
                )
            return out

        if n == 1:
            # Degenerate region: apply the pipeline inline.  The compiled
            # plan is byte-identical to writing the stages unsharded.
            return replicate(self, 0)
        key_tuple = (key,) if isinstance(key, str) else tuple(key)
        flow = self.flow
        # shard() runs user code mid-construction; snapshot so a failing
        # pipeline leaves the flow (and this handle) exactly as it was.
        saved = (
            list(flow._nodes), list(flow._edges), set(flow._names),
            list(flow._shard_regions), self._spent, self._node.consumed,
        )
        try:
            part = flow._derive(
                lambda nm: Partition(
                    nm, schema, key=key_tuple, fanout=n,
                    stash_limit=stash_limit, **op_kwargs,
                ),
                name=name, base="shard", kind="shard", inputs=(self,),
                page_size=page_size, queue_capacity=queue_capacity,
                configure=configure, fanout_ok=True,
            )
            part_node = part._node
            outs: list[StreamHandle] = []
            lanes: list[tuple[str, ...]] = []
            for index in range(n):
                lane = StreamHandle(flow, part_node)
                before = len(flow._nodes)
                out = replicate(lane, index)
                if out._node is part_node:
                    raise FlowError(
                        "shard() pipeline must add at least one stage "
                        "per lane"
                    )
                lanes.append(
                    tuple(node.name for node in flow._nodes[before:])
                )
                outs.append(out)
            flow._check_same_schema("shard", outs)
            merge = flow._derive(
                lambda nm: ShardMerge(
                    nm, outs[0]._node.schema, arity=n
                ),
                name=merge_name, base=f"{part_node.name}_merge",
                kind="shard-merge", inputs=tuple(outs),
                page_size=page_size, queue_capacity=queue_capacity,
            )
        except BaseException:
            (flow._nodes, flow._edges, flow._names,
             flow._shard_regions) = saved[:4]
            self._spent, self._node.consumed = saved[4], saved[5]
            raise
        flow._shard_regions.append(
            ShardGroup(
                name=part_node.name,
                partition=part_node.name,
                merge=merge._node.name,
                key=key_tuple,
                n=n,
                lanes=tuple(lanes),
            )
        )
        return merge

    def union(
        self,
        *others: "StreamHandle",
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Merge same-schema streams (UNION, punctuation-aligning)."""
        schema = self._require_schema("union")
        inputs = (self, *others)
        self.flow._check_same_schema("union", inputs)
        arity = len(inputs)
        return self.flow._derive(
            lambda name: Union(name, schema, arity=arity, **op_kwargs),
            name=name, base="union", kind="union", inputs=inputs,
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    def pace(
        self,
        *others: "StreamHandle",
        on: str,
        interval: float,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        feedback_enabled: bool = True,
        feedback_interval: float = 0.0,
        feedback_bound: str = "watermark",
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Merge under a disorder bound; the feedback-producing PACE.

        ``interval`` is the tolerance of the paper's ``WITH PACE ON
        <attr> <n>`` clause: tuples more than ``interval`` behind the high
        watermark of ``on`` are dropped, and assumed feedback flows to the
        lagging inputs.  With no ``others`` the second input is an empty
        stream that closes immediately (single-stream PACE).
        """
        schema = self._require_schema("pace")
        inputs: tuple[StreamHandle, ...] = (self, *others)
        self.flow._check_same_schema("pace", inputs)
        self.flow._check_inputs(inputs)
        stage_name = self.flow._next_name(name, "pace")
        arity = max(2, len(inputs))

        def make(name: str) -> Operator:
            return Pace(
                name, schema,
                timestamp_attribute=on,
                tolerance=interval,
                arity=arity,
                feedback_enabled=feedback_enabled,
                feedback_interval=feedback_interval,
                feedback_bound=feedback_bound,
                **op_kwargs,
            )

        if len(inputs) == 1:
            # Validate the PACE arguments *before* materialising the
            # hidden empty source, so a bad call leaves no orphan stage
            # behind.  (With explicit other inputs, _derive's own
            # pre-mutation validation already covers this.)
            make(stage_name)
            inputs = (
                self,
                self.flow.source(schema, [], name=f"{stage_name}_empty"),
            )
        return self.flow._derive(
            make, name=stage_name, base="pace", kind="pace", inputs=inputs,
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    def join(
        self,
        other: "StreamHandle",
        *,
        on: Sequence[tuple[str, str]],
        how: str = "inner",
        condition: Callable[[StreamTuple, StreamTuple], bool] | None = None,
        name: str | None = None,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "StreamHandle":
        """Equi-join with ``other`` (symmetric hash join); self is left."""
        left = self._require_schema("join")
        right = other._require_schema("join")
        return self.flow._derive(
            lambda name: SymmetricHashJoin(
                name, left, right, on,
                condition=condition, how=how, **op_kwargs,
            ),
            name=name, base="join", kind="join", inputs=(self, other),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )

    # -- terminals ----------------------------------------------------------------

    def collect(
        self,
        name: str = "sink",
        *,
        keep_punctuation: bool = False,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "Flow":
        """Terminate in a :class:`CollectSink` named ``name``.

        Returns the flow, so a linear pipeline reads top to bottom and
        ends ready to ``run()``.
        """
        schema = self.schema
        self.flow._derive(
            lambda name: CollectSink(
                name, schema, keep_punctuation=keep_punctuation,
                **op_kwargs,
            ),
            name=name, base="sink", kind="collect", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )
        return self.flow

    def collect_awaitable(
        self,
        name: str = "sink",
        *,
        keep_punctuation: bool = False,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "Flow":
        """Terminate in an :class:`AwaitableSink` named ``name``.

        Like :meth:`collect`, but the built sink's results can be
        ``await``-ed by client coroutines running alongside an
        ``AsyncioEngine.arun()`` (``await plan.operator(name)``); after a
        synchronous run the await resolves immediately.
        """
        schema = self.schema
        self.flow._derive(
            lambda name: AwaitableSink(
                name, schema, keep_punctuation=keep_punctuation,
                **op_kwargs,
            ),
            name=name, base="sink", kind="collect-awaitable",
            inputs=(self,), page_size=page_size,
            queue_capacity=queue_capacity, configure=configure,
        )
        return self.flow

    def push(
        self,
        name: str = "out",
        *,
        high_water: int = 64,
        low_water: int | None = None,
        retain: int | None = 1024,
        keep_punctuation: bool = False,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "Flow":
        """Terminate in a :class:`PushSink` publishing to a `Broadcast`.

        The serving delivery terminal: every result is pushed into the
        flow's :meth:`Flow.hub` the moment it is produced, fanning out
        to live subscribers (SSE/websocket clients).  ``high_water`` /
        ``low_water`` bound each subscriber's buffer via the hub's
        admission gate; ``retain`` caps the sink's local result history
        so always-on flows run in bounded memory (``docs/serving.md``).

        Like :meth:`Flow.ingest`'s channel, the hub persists across
        builds: subscribers survive a supervised restart.
        """
        schema = self.schema
        hub = Broadcast(name, high_water=high_water, low_water=low_water)
        self.flow._derive(
            lambda name: PushSink(
                name, schema, publish=hub.publish, on_complete=hub.close,
                retain=retain, keep_punctuation=keep_punctuation,
                **op_kwargs,
            ),
            name=name, base="out", kind="push", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )
        self.flow._serving_hubs[name] = hub
        return self.flow

    def on_demand(
        self,
        name: str = "client",
        *,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        **op_kwargs: Any,
    ) -> "Flow":
        """Terminate in an :class:`OnDemandSink` (poll/demand client)."""
        schema = self.schema
        self.flow._derive(
            lambda name: OnDemandSink(name, schema, **op_kwargs),
            name=name, base="client", kind="on-demand", inputs=(self,),
            page_size=page_size, queue_capacity=queue_capacity,
            configure=configure,
        )
        return self.flow

    # -- internals ----------------------------------------------------------------

    def _require_schema(self, verb: str) -> Schema:
        if self._node.schema is None:
            raise FlowError(
                f"{verb}() needs the upstream schema, but stage "
                f"{self._node.name!r} declares none"
            )
        return self._node.schema

    def _check_consumable(self) -> None:
        node = self._node
        if self._spent or (node.consumed and not node.fanout_ok):
            raise FlowError(
                f"stream {node.name!r} is already consumed; use "
                f".split() to feed several consumers"
            )

    def _consume(self) -> _Node:
        self._check_consumable()
        self._spent = True
        self._node.consumed += 1
        return self._node


class Flow:
    """A named dataflow under construction; compiles to :class:`QueryPlan`.

    ``page_size`` is the default data-queue page size for every edge;
    individual verbs override it per edge.  A flow is re-runnable: every
    :meth:`build` (and therefore every :meth:`run`) instantiates fresh
    operators from the recorded specs.
    """

    def __init__(
        self, name: str = "flow", *, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        self.name = name
        self.page_size = page_size
        self._nodes: list[_Node] = []
        self._edges: list[_Edge] = []
        self._names: set[str] = set()
        self._shard_regions: list[ShardGroup] = []
        #: Serving adapters (``ingest``/``push`` verbs): persistent
        #: channels and hubs shared by every build of this flow, keyed
        #: by stage name.  The serving supervisor introspects these.
        self._serving_channels: dict[str, Channel] = {}
        self._serving_hubs: dict[str, Broadcast] = {}

    # -- sources ------------------------------------------------------------------

    def source(
        self,
        schema: Schema,
        timeline: Sequence[tuple[float, Any]],
        *,
        name: str | None = None,
        **op_kwargs: Any,
    ) -> StreamHandle:
        """Add a replayed source over ``(arrival_time, element)`` pairs."""
        stage_name = self._next_name(name, "source")
        timeline = list(timeline)

        def factory() -> Operator:
            return ListSource(stage_name, schema, timeline, **op_kwargs)

        prototype = factory()  # validate the timeline eagerly
        node = _Node(
            stage_name, "source", factory, schema, prototype=prototype
        )
        node.source_args = (schema, timeline, op_kwargs)
        self._commit_node(node)
        return StreamHandle(self, node)

    def generate(
        self,
        schema: Schema,
        events_factory: Callable[[], Iterable[tuple[float, Any]]],
        *,
        name: str | None = None,
        **op_kwargs: Any,
    ) -> StreamHandle:
        """Add a lazy generator source (arbitrarily long streams)."""
        stage_name = self._next_name(name, "source")
        node = _Node(
            stage_name, "generator-source",
            lambda: GeneratorSource(
                stage_name, schema, events_factory, **op_kwargs
            ),
            schema,
            type_name="GeneratorSource", is_source=True,
        )
        self._commit_node(node)
        return StreamHandle(self, node)

    def from_async_iterable(
        self,
        schema: Schema,
        events_factory: Callable[[], Any],
        *,
        name: str | None = None,
        **op_kwargs: Any,
    ) -> StreamHandle:
        """Add a source fed by an async iterable (network-shaped input).

        ``events_factory`` is a zero-argument callable returning an
        async iterable of ``(arrival_time, element)`` pairs -- typically
        an async generator wrapping a websocket, HTTP feed or broker
        subscription.  On ``engine="asyncio"`` the iterable is awaited
        natively (one parked coroutine per feed); the simulated and
        threaded engines pump it through a private event loop, so the
        same flow runs on every backend.  See ``docs/engines.md``.
        """
        stage_name = self._next_name(name, "source")
        node = _Node(
            stage_name, "async-source",
            lambda: AsyncIterableSource(
                stage_name, schema, events_factory, **op_kwargs
            ),
            schema,
            type_name="AsyncIterableSource", is_source=True,
        )
        self._commit_node(node)
        return StreamHandle(self, node)

    def ingest(
        self,
        schema: Schema,
        *,
        name: str | None = None,
        capacity: int = 256,
        **op_kwargs: Any,
    ) -> StreamHandle:
        """Add a network-fed source backed by a persistent `Channel`.

        The serving verb: returns a stream handle like any other source,
        but input arrives at runtime through :meth:`channel`'s
        :meth:`~repro.stream.Channel.put` -- typically called by the
        serving layer's HTTP/websocket handlers.  ``capacity`` bounds
        the in-channel backlog: when the plan is paused by backpressure,
        producers awaiting ``put`` are suspended rather than dropped, so
        overload propagates to the socket (``docs/serving.md``).

        Unlike the per-run sources, the channel *persists across
        builds*: a supervisor restarting a crashed flow re-attaches a
        fresh source coroutine to the same channel, and elements
        admitted during the outage are delivered by the next run.
        """
        stage_name = self._next_name(name, "ingest")
        channel = Channel(stage_name, schema, capacity=capacity)
        handle = self.from_async_iterable(
            schema, channel.stream, name=stage_name,
            idle_flush=lambda: channel.idle, **op_kwargs,
        )
        self._serving_channels[stage_name] = channel
        return handle

    def channel(self, name: str | None = None) -> Channel:
        """The ingest channel created by :meth:`ingest`.

        With one ingest stage the name may be omitted; with several it
        selects by stage name.
        """
        return self._serving_entry(
            self._serving_channels, name, "ingest channel", "ingest()"
        )

    def hub(self, name: str | None = None) -> Broadcast:
        """The delivery hub created by a ``.push()`` terminal."""
        return self._serving_entry(
            self._serving_hubs, name, "delivery hub", ".push()"
        )

    def _serving_entry(
        self, table: dict[str, Any], name: str | None, what: str, verb: str
    ) -> Any:
        if name is not None:
            try:
                return table[name]
            except KeyError:
                raise FlowError(
                    f"flow {self.name!r} has no {what} named {name!r}; "
                    f"declared: {sorted(table) or 'none'}"
                ) from None
        if not table:
            raise FlowError(
                f"flow {self.name!r} declares no {what}; add a {verb} "
                f"stage first"
            )
        if len(table) > 1:
            raise FlowError(
                f"flow {self.name!r} has several {what}s "
                f"({sorted(table)}); pass a name"
            )
        return next(iter(table.values()))

    def merge(
        self,
        operator: Operator | Callable[[], Operator],
        *inputs: StreamHandle,
        page_size: int | None = None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
    ) -> StreamHandle:
        """Feed ``inputs`` into a custom n-ary operator, port by port."""
        if not inputs:
            raise FlowError("merge() needs at least one input handle")
        return self._attach_custom(
            operator, inputs=inputs, page_size=page_size,
            queue_capacity=queue_capacity, configure=configure,
        )

    # -- compilation --------------------------------------------------------------

    def build(self, *, queue_capacity: int | None = None) -> QueryPlan:
        """Compile to a fresh, validated :class:`QueryPlan`.

        ``queue_capacity`` bounds every edge that did not set its own
        capacity via a verb's ``queue_capacity=`` argument -- the
        one-knob way to turn on backpressure for a whole flow.
        """
        if not self._nodes:
            raise FlowError(f"flow {self.name!r} has no stages")
        plan = QueryPlan(self.name)
        instances: dict[int, Operator] = {}
        for node in self._nodes:
            operator = node.make()
            instances[id(node)] = operator
            plan.add(operator)
        for edge in self._edges:
            plan.connect(
                instances[id(edge.producer)],
                instances[id(edge.consumer)],
                port=edge.port,
                page_size=edge.page_size,
                capacity=(
                    edge.capacity if edge.capacity is not None
                    else queue_capacity
                ),
            )
        for group in self._shard_regions:
            plan.register_shard_group(group)
        plan.validate()
        return plan

    def describe(self, *, checkpoints: bool = False) -> str:
        """Topology description, rendered exactly as the compiled plan's.

        Produced from the recorded stage specs through the same renderer
        as :meth:`QueryPlan.describe` -- byte-identical to
        ``flow.build().describe()`` but without building, so inspecting a
        flow never spends a single-use ``apply()``'d instance.  With
        ``checkpoints=True``, checkpoint-capable stages (their operator
        class overrides the snapshot seam) are marked ``⌖``.
        """
        return render_describe(
            self.name,
            [
                (
                    node.name,
                    node.type_name
                    + checkpoint_annotation(node.op_type, checkpoints),
                    [
                        f"{edge.consumer.name}[{edge.port}]"
                        f"{edge_annotation(edge.capacity)}"
                        for edge in self._edges if edge.producer is node
                    ],
                )
                for node in self._nodes
            ],
            regions=self._shard_regions,
        )

    def to_dot(self, *, checkpoints: bool = False) -> str:
        """Graphviz DOT export, rendered exactly as the compiled plan's.

        Shares :func:`repro.engine.plan.render_dot` with
        :meth:`QueryPlan.to_dot`, without building; ``checkpoints=True``
        appends ``⌖`` to checkpoint-capable stages' type labels.
        """
        has_output = {id(edge.producer) for edge in self._edges}
        return render_dot(
            self.name,
            [
                (
                    node.name,
                    node.type_name
                    + checkpoint_annotation(node.op_type, checkpoints),
                    node.is_source,
                    id(node) not in has_output,
                )
                for node in self._nodes
            ],
            [
                (node.name, edge.consumer.name, edge.port, edge.capacity)
                for node in self._nodes
                for edge in self._edges if edge.producer is node
            ],
            regions=self._shard_regions,
        )

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        engine: str = "simulated",
        *,
        feedback: Sequence[tuple[float, str, Any]] = (),
        actions: Sequence[tuple[float, Callable[[QueryPlan], None]]] = (),
        queue_capacity: int | None = None,
        optimize: bool = False,
        **engine_options: Any,
    ) -> RunResult:
        """Compile and run on the named engine; returns a ``RunResult``.

        ``optimize=True`` rewrites the compiled plan before engine
        handoff (:func:`repro.optimizer.optimize`): guard pushdown,
        projection pruning, and fusion of stateless chains into
        :class:`~repro.operators.fused.FusedOperator` composites.  The
        rewritten plan is observably equivalent -- same sink data and
        punctuation, same feedback effects at sources.  Note that
        ``feedback``/``actions`` entries must target operators that
        still exist after rewriting: a stage fused into a composite is
        addressable only by the composite's ``a+b+c`` name.

        ``feedback`` declares client feedback injections as ``(time,
        operator_name, FeedbackPunctuation)`` triples: at ``time`` (the
        engine's clock), the named operator -- typically a sink --
        ``inject_feedback``'s the punctuation, which then flows upstream
        like any other feedback.  ``actions`` are ``(time, callable)``
        pairs for anything richer (polls, demands); the callable receives
        the built plan.  An entry may append a third element naming an
        *owner* operator -- ``(time, callable, "sink")`` -- which
        owner-aware engines (multiprocess) use to run the action in the
        worker process holding that operator; other engines ignore it.
        ``queue_capacity`` bounds every edge without its
        own per-verb capacity, enabling runtime backpressure (see
        ``docs/backpressure.md``).  ``engine_options`` pass to the engine
        factory (``control_latency=...``, ...).

        ``elastic=ElasticConfig(...)`` (an engine option) arms the
        elastic controller over the flow's shard regions: the runtime
        samples per-lane skew and queue occupancy on the configured
        cadence and re-partitions hot keys across lanes through
        ``RebalancePunctuation`` on the control plane (see
        ``docs/elasticity.md``).  Supported by the simulated, threaded
        and asyncio engines; the multiprocess engine declines with a
        recorded reason (``result.metrics.elastic_declines``), and
        combining ``elastic=`` with ``checkpoint_every=`` raises
        ``EngineError``.
        """
        plan = self.build(queue_capacity=queue_capacity)
        if optimize:
            # Imported lazily: flows that never opt in pay nothing for
            # the rewrite machinery.
            from repro.optimizer import optimize as optimize_plan

            optimize_plan(plan)
            plan.validate()
        runner = create_engine(engine, plan, **engine_options)
        # (time, thunk, owner): the owner names the operator the thunk
        # targets, letting owner-aware engines (multiprocess) route the
        # action to the worker holding that operator's plan copy.
        schedule: list[tuple[float, Callable[[], None], str | None]] = []
        for entry in feedback:
            try:
                when, target, punct = entry
            except (TypeError, ValueError):
                raise FlowError(
                    "feedback entries are (time, operator_name, "
                    "FeedbackPunctuation) triples"
                ) from None
            operator = plan.operator(target)
            schedule.append(
                (float(when),
                 lambda op=operator, fb=punct: op.inject_feedback(fb),
                 target)
            )
        for entry in actions:
            try:
                if len(entry) == 3:
                    when, action, owner = entry
                else:
                    when, action = entry
                    owner = None
            except (TypeError, ValueError):
                raise FlowError(
                    "actions entries are (time, callable) pairs or "
                    "(time, callable, owner) triples; the callable "
                    "receives the built plan"
                ) from None
            if not callable(action):
                raise FlowError(
                    f"action at t={when} is not callable: {action!r}"
                )
            if owner is not None:
                plan.operator(owner)  # unknown owner: fail fast
            schedule.append(
                (float(when), lambda act=action: act(plan), owner)
            )
        if schedule and not hasattr(runner, "at"):
            raise EngineError(
                f"engine {engine!r} does not support scheduled actions "
                f"(no at() hook); cannot inject feedback declaratively"
            )
        if schedule:
            supports_owner = (
                "owner" in inspect.signature(runner.at).parameters
            )
            for when, thunk, owner in schedule:
                if supports_owner:
                    runner.at(when, thunk, owner=owner)
                else:
                    runner.at(when, thunk)
        return runner.run()

    # -- internals ----------------------------------------------------------------

    def _next_name(self, name: str | None, base: str) -> str:
        """Resolve a stage name without registering it (pure check).

        Registration happens only when the stage commits -- a verb that
        fails validation must not claim its name (or mutate the flow in
        any other way), so a corrected retry succeeds.
        """
        if name is not None:
            if name in self._names:
                raise FlowError(
                    f"flow {self.name!r} already has a stage named "
                    f"{name!r}"
                )
            return name
        candidate = base
        counter = 1
        while candidate in self._names:
            counter += 1
            candidate = f"{base}_{counter}"
        return candidate

    def _commit_node(self, node: _Node) -> None:
        self._names.add(node.name)
        self._nodes.append(node)

    def _check_same_schema(
        self, verb: str, inputs: Sequence[StreamHandle]
    ) -> None:
        first = inputs[0]._require_schema(verb)
        for other in inputs[1:]:
            schema = other._require_schema(verb)
            if schema.names != first.names:
                raise FlowError(
                    f"{verb}() inputs must share a schema: "
                    f"{first.names} vs {schema.names}"
                )

    def _check_inputs(self, inputs: Sequence[StreamHandle]) -> None:
        """Pre-validate input handles without consuming them.

        Runs before any mutation so a failing verb leaves the flow
        exactly as it was (no half-wired node, no consumed handle).
        The same handle twice in one verb is rejected here too --
        otherwise the second consumption would fail only mid-commit.
        """
        seen: set[int] = set()
        for handle in inputs:
            if handle.flow is not self:
                raise FlowError(
                    f"stream {handle.name!r} belongs to flow "
                    f"{handle.flow.name!r}, not {self.name!r}"
                )
            if id(handle) in seen:
                raise FlowError(
                    f"stream {handle.name!r} is passed twice to one "
                    f"verb; use .split() to duplicate it"
                )
            seen.add(id(handle))
            handle._check_consumable()

    def _derive(
        self,
        make: Callable[[str], Operator],
        *,
        name: str | None,
        base: str,
        kind: str,
        inputs: Sequence[StreamHandle],
        page_size: int | None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None = None,
        fanout_ok: bool = False,
    ) -> StreamHandle:
        # Validate everything first; mutate the flow only on success.
        self._check_inputs(inputs)
        stage_name = self._next_name(name, base)
        factory = lambda: make(stage_name)  # noqa: E731
        prototype = factory()  # validate constructor args eagerly
        if not isinstance(prototype, Operator):
            raise FlowError(
                f"stage {stage_name!r} factory returned "
                f"{prototype!r}, not an Operator"
            )
        if prototype.n_inputs != len(inputs):
            raise FlowError(
                f"stage {stage_name!r} has {prototype.n_inputs} input "
                f"port(s) but {len(inputs)} stream(s) were supplied"
            )
        node = _Node(
            stage_name, kind, factory, prototype.output_schema,
            fanout_ok=fanout_ok, configure=configure, prototype=prototype,
        )
        self._commit_node(node)
        edge_page = self.page_size if page_size is None else page_size
        for port, handle in enumerate(inputs):
            producer = handle._consume()
            self._edges.append(
                _Edge(producer, node, port, edge_page, queue_capacity)
            )
        return StreamHandle(self, node)

    def _attach_custom(
        self,
        operator: Operator | Callable[[], Operator],
        *,
        inputs: Sequence[StreamHandle],
        page_size: int | None,
        queue_capacity: int | None = None,
        configure: Callable[[Operator], None] | None,
    ) -> StreamHandle:
        self._check_inputs(inputs)
        if isinstance(operator, Operator):
            prototype = operator
            single_use = True
            factory: Callable[[], Operator] = lambda: prototype  # noqa: E731
        elif callable(operator):
            prototype = operator()
            if not isinstance(prototype, Operator):
                raise FlowError(
                    f"apply()/merge() factory returned {prototype!r}, "
                    f"not an Operator"
                )
            single_use = False
            factory = operator
        else:
            raise FlowError(
                f"apply()/merge() takes an Operator or a factory, "
                f"got {operator!r}"
            )
        # The name is baked into the operator: a clash raises here.
        stage_name = self._next_name(prototype.name, prototype.name)
        if prototype.n_inputs != len(inputs):
            raise FlowError(
                f"stage {stage_name!r} has {prototype.n_inputs} input "
                f"port(s) but {len(inputs)} stream(s) were supplied"
            )
        node = _Node(
            stage_name, "custom", factory, prototype.output_schema,
            single_use=single_use, configure=configure,
            prototype=None if single_use else prototype,
            type_name=type(prototype).__name__,
            is_source=prototype.n_inputs == 0,
        )
        self._commit_node(node)
        edge_page = self.page_size if page_size is None else page_size
        for port, handle in enumerate(inputs):
            producer = handle._consume()
            self._edges.append(
                _Edge(producer, node, port, edge_page, queue_capacity)
            )
        return StreamHandle(self, node)

    def __repr__(self) -> str:
        return (
            f"Flow({self.name!r}, stages={len(self._nodes)}, "
            f"edges={len(self._edges)})"
        )
