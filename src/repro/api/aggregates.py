"""Aggregate specs for the fluent API: ``window(avg("value"), ...)``.

A tiny declarative layer over :class:`~repro.operators.aggregate.
AggregateKind`: each helper returns an :class:`AggSpec` naming the
aggregate function and the value attribute it folds, which
:meth:`~repro.api.flow.StreamHandle.window` expands into a
:class:`~repro.operators.aggregate.WindowAggregate`.

``sum`` / ``max`` / ``min`` deliberately shadow the builtins *inside this
module only* (the PySpark ``functions``-module idiom); import them
qualified or aliased if that bothers you.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.operators.aggregate import AggregateKind

__all__ = ["AggSpec", "avg", "count", "max", "min", "sum"]


@dataclass(frozen=True)
class AggSpec:
    """One aggregate function applied to one value attribute."""

    kind: str
    attribute: str | None = None


def avg(attribute: str) -> AggSpec:
    """Arithmetic mean of ``attribute`` per (window, group)."""
    return AggSpec(AggregateKind.AVG, attribute)


def count(attribute: str | None = None) -> AggSpec:
    """Tuple count per (window, group); the attribute is optional."""
    return AggSpec(AggregateKind.COUNT, attribute)


def sum(attribute: str) -> AggSpec:  # noqa: A001 - functions-module idiom
    """Sum of ``attribute`` per (window, group)."""
    return AggSpec(AggregateKind.SUM, attribute)


def max(attribute: str) -> AggSpec:  # noqa: A001 - functions-module idiom
    """Maximum of ``attribute`` per (window, group)."""
    return AggSpec(AggregateKind.MAX, attribute)


def min(attribute: str) -> AggSpec:  # noqa: A001 - functions-module idiom
    """Minimum of ``attribute`` per (window, group)."""
    return AggSpec(AggregateKind.MIN, attribute)
