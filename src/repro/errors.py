"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the stream system can catch one base class.  Sub-classes are
grouped by subsystem (schema/pattern/plan/engine/feedback) and carry plain
human-readable messages; no error stores live references to engine state.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Schema construction or attribute resolution failed.

    Raised for duplicate attribute names, unknown attribute lookups and
    arity mismatches between a schema and a value sequence.
    """


class PatternError(ReproError):
    """A pattern or punctuation is malformed or used against a wrong schema.

    Raised for arity mismatches between a pattern and a schema, illegal atom
    combinations, and unparsable punctuation literals.
    """


class PlanError(ReproError):
    """A query plan is structurally invalid.

    Raised for cycles, unconnected ports, duplicate operator names, and
    schema mismatches between connected operators.
    """


class FlowError(PlanError):
    """The fluent dataflow API (``repro.api.Flow``) was misused.

    Raised for re-consuming a stream handle without ``split()``, mixing
    handles across flows, punctuating a non-source stage, and re-building
    a flow that contains single-use operator instances.  Subclasses
    :class:`PlanError`: a flow misuse is a plan-construction error.
    """


class EngineError(ReproError):
    """An execution engine reached an inconsistent state.

    Raised for double-started engines, events scheduled in the past, and
    operators that emit after declaring end-of-stream.
    """


class FeedbackError(ReproError):
    """Feedback punctuation was produced or handled incorrectly.

    Raised for feedback whose pattern does not match the receiving schema
    and for attempts to retract enacted feedback (retraction is not part of
    the paper's model; see DESIGN.md section 7).
    """


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class ServingError(ReproError):
    """The network serving layer was misconfigured or misused.

    Raised for ingest into closed channels, admission-control violations
    (tenant over its concurrent-flow cap), malformed client payloads, and
    requests for optional serving dependencies (uvloop) that are not
    installed in this environment.
    """


class DurabilityError(ReproError):
    """Checkpointing or recovery was configured or used incorrectly.

    Raised for unknown ingestion policies, non-positive checkpoint
    intervals, and stores that cannot serve the requesting engine (an
    in-memory store under the multiprocess engine, whose forked workers
    would write into throwaway copies).
    """
