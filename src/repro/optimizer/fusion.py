"""Fusion pass: collapse stateless chains into FusedOperator composites.

A *fusible* operator is a single-input stateless verb -- SELECT, PROJECT,
MAP, PASSTHROUGH -- with nothing that ties it to its own seat in the
plan: no cost metering (virtual-time charging is per schedulable unit),
no checkpointable state, no per-lane flow control, and not a shard
region *boundary* (Partition and ShardMerge anchor the region's control
plane).  Lane interiors do fuse: the pass rewrites the owning
:class:`~repro.engine.plan.ShardGroup`'s lane tuple so the region
record stays truthful, and the metrics rollup attributes a composite's
stages back to their lane (``lane::composite::stage`` keys).  Maximal
runs of two or more fusible operators along single-fanout edges become
one :class:`~repro.operators.fused.FusedOperator`.

Every decline is recorded with its reason: an optimized plan's report
says not just what fused but why the rest did not.
"""

from __future__ import annotations

from repro.engine.plan import QueryPlan, checkpoint_capable
from repro.operators.base import Operator, SourceOperator
from repro.operators.fused import FusedOperator
from repro.operators.map import Map
from repro.operators.passthrough import PassThrough
from repro.operators.project import Project
from repro.operators.select import Select

__all__ = ["FUSIBLE_TYPES", "fuse_chains", "fusible_reason"]

#: The stateless single-input whitelist.  Subclasses qualify only if they
#: add no metering or snapshot state (checked per instance below).
FUSIBLE_TYPES = (Select, Project, Map, PassThrough)


def shard_bound_names(plan: QueryPlan) -> set[str]:
    """Operators a shard region pins by name (the lane boundaries).

    Only the Partition and ShardMerge are pinned: they are the region's
    control-plane endpoints (routing tables, rebalance markers, ack
    counting live there).  Lane *members* are free to fuse --
    :func:`fuse_chains` rewrites the group's lane tuples afterwards so
    the region record names the composite.
    """
    names: set[str] = set()
    for group in plan.shard_groups:
        names.add(group.partition)
        names.add(group.merge)
    return names


def fusible_reason(
    op: Operator, shard_bound: set[str]
) -> str | None:
    """Why ``op`` cannot fuse, or None when it can."""
    if isinstance(op, SourceOperator):
        return "source"
    if not isinstance(op, FUSIBLE_TYPES):
        return f"stateful or multi-input ({type(op).__name__})"
    if op.n_inputs != 1:
        return f"{op.n_inputs} inputs"
    if op.needs_metering:
        return "cost-metered (virtual-time charging is per operator)"
    if checkpoint_capable(type(op)):
        return "carries checkpointable state"
    if op.lane_flow_control:
        return "per-lane flow control"
    if op.name in shard_bound:
        return "shard region boundary (anchors the region's control plane)"
    if op.inputs[0] is None:
        return "input not wired"
    return None


def _find_chains(plan: QueryPlan) -> tuple[
    list[list[Operator]], list[tuple[str, str]]
]:
    """Maximal fusible runs (length >= 2) and the recorded declines."""
    shard_bound = shard_bound_names(plan)
    reasons: dict[str, str | None] = {
        op.name: fusible_reason(op, shard_bound) for op in plan
    }

    def fusible(op: Operator) -> bool:
        return reasons[op.name] is None

    def continues_a_chain(op: Operator) -> bool:
        """Is ``op`` mid-chain (its producer will pick it up)?"""
        producer = op.inputs[0].producer
        return (
            producer is not None
            and fusible(producer)
            and len(producer.outputs) == 1
        )

    chains: list[list[Operator]] = []
    for op in plan:
        if not fusible(op) or continues_a_chain(op):
            continue
        chain = [op]
        cursor = op
        while len(cursor.outputs) == 1:
            succ = cursor.outputs[0].consumer
            if not fusible(succ):
                break
            chain.append(succ)
            cursor = succ
        if len(chain) >= 2:
            chains.append(chain)
    declined = [
        (op.name, reasons[op.name])
        for op in plan
        if reasons[op.name] is not None
        and not isinstance(op, SourceOperator)
    ]
    return chains, declined


def _fuse_one(plan: QueryPlan, chain: list[Operator]) -> FusedOperator:
    """Replace ``chain`` with one composite, carrying queue configs.

    The upstream feed keeps the old feed edge's configuration; each
    downstream edge keeps the old tail edge's.  The internal edges vanish
    -- that is the optimization.
    """
    head, tail = chain[0], chain[-1]
    feed_port = head.inputs[0]
    upstream = feed_port.producer
    feed_edge = next(
        e for e in upstream.outputs if e.consumer is head
    )
    out_edges = list(tail.outputs)
    internal = [op.outputs[0] for op in chain[:-1]]

    plan.disconnect(feed_edge)
    for edge in internal:
        plan.disconnect(edge)
    for edge in out_edges:
        plan.disconnect(edge)
    for op in chain:
        plan.remove_operator(op.name)

    fused = FusedOperator(chain)
    plan.add(fused)
    plan.connect_like(upstream, fused, feed_edge, port=0)
    for edge in out_edges:
        plan.connect_like(fused, edge.consumer, edge)
    return fused


def fuse_chains(plan: QueryPlan, report) -> None:
    """Run the fusion pass over ``plan``, recording into ``report``."""
    chains, declined = _find_chains(plan)
    for chain in chains:
        chain_names = [op.name for op in chain]
        fused = _fuse_one(plan, chain)
        # A chain that lived inside a shard lane replaced that lane's
        # run of member names; keep the region record truthful.
        plan.replace_lane_members(chain_names, fused.name)
        report.fused.append((fused.name, fused.stage_names))
    report.declined.extend(declined)
