"""Plan optimizer: rewrite passes over the :class:`QueryPlan` IR.

Run before engine handoff (``flow.run(optimize=True)``) or standalone
(``optimize(plan)``).  Three passes, in order:

1. **guard pushdown** (:mod:`repro.optimizer.pushdown`) -- move
   pattern-predicate SELECTs upstream across commuting stateless stages,
   so non-qualifying tuples are dropped before work is spent on them;
2. **projection pruning** (:mod:`repro.optimizer.pruning`) -- dead-drop
   attributes at projection boundaries: when a downstream projection
   proves attributes unread, the upstream projection drops them
   immediately (adjacent projections compose), and projections that keep
   everything vanish;
3. **fusion** (:mod:`repro.optimizer.fusion`) -- collapse the remaining
   chains of adjacent single-input stateless verbs into one
   :class:`~repro.operators.fused.FusedOperator`, so a page crosses one
   queue instead of N.

Every pass preserves the punctuation/feedback protocol observably: sink
data (as a multiset), sink punctuation, and feedback effects at sources
are identical to the unoptimized plan -- the property the differential
harness in ``tests/test_optimizer_equivalence.py`` checks mechanically.
Rewritten edges carry their queue configuration (``page_size``,
``capacity``, ``low_water``) through :meth:`QueryPlan.connect_like`, so
backpressure behaviour survives rewrites too.

Exploits the operator-equivalence observations in *On the Semantic
Overlap of Operators in Stream Processing Engines* (see PAPERS.md): the
stateless verbs here are mutually reorderable/composable exactly when
their schema mappings carry exact lineage for the attributes involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.plan import QueryPlan
from repro.optimizer.fusion import fuse_chains
from repro.optimizer.pruning import prune_projections
from repro.optimizer.pushdown import push_guards

__all__ = ["OptimizationReport", "optimize"]


@dataclass
class OptimizationReport:
    """What the optimizer did (and declined) to one plan.

    ``fused`` lists ``(composite_name, stage_names)`` per new composite;
    ``pushed`` lists ``(select_name, pushed_past_name)`` per guard swap;
    ``pruned`` lists the names of projections removed or composed away;
    ``declined`` lists ``(operator_name, reason)`` for operators the
    fusion pass considered and rejected -- the honest record of where the
    plan kept its materialized form.
    """

    fused: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)
    pushed: list[tuple[str, str]] = field(default_factory=list)
    pruned: list[str] = field(default_factory=list)
    declined: list[tuple[str, str]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.fused or self.pushed or self.pruned)


def optimize(
    plan: QueryPlan,
    *,
    fuse: bool = True,
    pushdown: bool = True,
    prune: bool = True,
) -> OptimizationReport:
    """Rewrite ``plan`` in place; return what happened.

    Pass order matters: pushdown first (it moves SELECTs into positions
    pruning and fusion then see), pruning second (composed projections
    make longer fusible chains), fusion last (it freezes the chain shape).
    """
    report = OptimizationReport()
    if pushdown:
        push_guards(plan, report)
    if prune:
        prune_projections(plan, report)
    if fuse:
        fuse_chains(plan, report)
    return report
