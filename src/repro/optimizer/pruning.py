"""Projection pruning: dead-drop attributes at projection boundaries.

Two provably-equivalent rewrites on PROJECT:

* **compose** -- when a projection feeds exactly one other projection,
  the downstream schema *proves* which attributes are unread, so the two
  collapse into one projection that drops everything dead at the earlier
  boundary.  Punctuation equivalence holds because absorption composes:
  a pattern constraining an attribute either projection drops is
  absorbed in both the two-step and the composed plan.
* **eliminate** -- a projection that keeps every input attribute in
  input order is the identity (data, punctuation and feedback all pass
  through unchanged under its identity lineage), so it splices out.

Only exact PROJECT instances move; subclasses and shard-region members
stay put.
"""

from __future__ import annotations

from repro.engine.plan import QueryPlan
from repro.operators.project import Project

from repro.optimizer.fusion import shard_bound_names

__all__ = ["prune_projections"]


def _compose_once(plan: QueryPlan, shard_bound: set[str], report) -> bool:
    """Collapse one adjacent PROJECT -> PROJECT pair; False when none."""
    for op in plan:
        if type(op) is not Project or op.name in shard_bound:
            continue
        if len(op.outputs) != 1 or op.needs_metering:
            continue
        succ = op.outputs[0].consumer
        if (
            type(succ) is not Project
            or succ.name in shard_bound
            or succ.needs_metering
            or op.inputs[0] is None
        ):
            continue
        feeder = op.inputs[0].producer
        if feeder is None:
            continue
        # succ's attributes name op's outputs; every one is an exact copy
        # of an op input, so the composed keep-list is their pre-image.
        composed_attrs = [
            op.mapping.exact_origin_in(name, 0).input_attribute
            for name in succ._attributes
        ]
        feed_edge = next(e for e in feeder.outputs if e.consumer is op)
        mid_edge = op.outputs[0]
        out_edges = list(succ.outputs)
        plan.disconnect(feed_edge)
        plan.disconnect(mid_edge)
        for edge in out_edges:
            plan.disconnect(edge)
        plan.remove_operator(op.name)
        plan.remove_operator(succ.name)
        composed = Project(succ.name, op.input_schema, composed_attrs)
        plan.add(composed)
        plan.connect_like(feeder, composed, feed_edge, port=0)
        for edge in out_edges:
            plan.connect_like(composed, edge.consumer, edge)
        report.pruned.append(op.name)
        return True
    return False


def _eliminate_once(
    plan: QueryPlan, shard_bound: set[str], report
) -> bool:
    """Splice out one identity PROJECT; False when none."""
    for op in plan:
        if type(op) is not Project or op.name in shard_bound:
            continue
        if op.needs_metering or op.inputs[0] is None:
            continue
        if tuple(op._attributes) != op.input_schema.names:
            continue
        feeder = op.inputs[0].producer
        if feeder is None:
            continue
        feed_edge = next(e for e in feeder.outputs if e.consumer is op)
        out_edges = list(op.outputs)
        plan.disconnect(feed_edge)
        for edge in out_edges:
            plan.disconnect(edge)
        plan.remove_operator(op.name)
        for edge in out_edges:
            plan.connect_like(feeder, edge.consumer, edge)
        report.pruned.append(op.name)
        return True
    return False


def prune_projections(plan: QueryPlan, report) -> None:
    """Compose then eliminate, to fixpoint."""
    shard_bound = shard_bound_names(plan)
    for _ in range(len(plan) + 1):
        if not _compose_once(plan, shard_bound, report):
            break
    for _ in range(len(plan) + 1):
        if not _eliminate_once(plan, shard_bound, report):
            break
