"""Guard pushdown: move pattern SELECTs toward the sources.

A SELECT whose predicate is a declarative :class:`Pattern` commutes with
an immediately-upstream stateless stage when every constrained attribute
has an *exact* origin in that stage's input (Definition 2's condition,
applied to predicates instead of feedback): filtering before the stage
drops exactly the tuples whose transformed image the original filter
would have dropped.  Pushing the filter up means the stage never does
work on non-qualifying tuples -- the optimizer applying, at plan time,
the same move the paper's assumed feedback makes at run time.

Only pattern predicates move (an opaque callable's column reads are
unknowable); SELECTs never swap past other SELECTs (pointless, and it
would cycle); shard-region members stay put.
"""

from __future__ import annotations

from repro.engine.plan import QueryPlan
from repro.operators.base import Operator
from repro.operators.map import Map
from repro.operators.passthrough import PassThrough
from repro.operators.project import Project
from repro.operators.select import Select
from repro.punctuation.patterns import Pattern

from repro.optimizer.fusion import shard_bound_names

__all__ = ["push_guards"]

#: Stages a pattern SELECT may commute across.
COMMUTABLE_TYPES = (Project, Map, PassThrough)


def _remap_pattern(
    select: Select, upstream: Operator
) -> Pattern | None:
    """``select.pattern`` rephrased over ``upstream``'s input schema.

    None when any constrained attribute lacks an exact origin (a computed
    MAP attribute, say) -- the swap would change semantics, so decline.
    """
    pattern = select.pattern
    in_schema = upstream.mapping.input_schemas[0]
    atoms = list(Pattern.all_wildcards(len(in_schema)).atoms)
    out_schema = upstream.output_schema
    for index, atom in pattern.constrained():
        origin = upstream.mapping.exact_origin_in(
            out_schema[index].name, 0
        )
        if origin is None:
            return None
        atoms[in_schema.index_of(origin.input_attribute)] = atom
    return Pattern(atoms, schema=in_schema)


def _swap_once(plan: QueryPlan, shard_bound: set[str], report) -> bool:
    """Find one legal swap, apply it, and report it.  False when none."""
    for op in plan:
        # Exact-type check: a Select *subclass* (QualityFilter) would be
        # rebuilt below as a plain Select, silently shedding behaviour.
        if type(op) is not Select or op.pattern is None:
            continue
        if op.n_inputs != 1 or op.inputs[0] is None:
            continue
        if op.name in shard_bound or op.needs_metering:
            continue
        upstream = op.inputs[0].producer
        if (
            upstream is None
            or not isinstance(upstream, COMMUTABLE_TYPES)
            or upstream.n_inputs != 1
            or len(upstream.outputs) != 1
            or upstream.name in shard_bound
            or upstream.inputs[0] is None
        ):
            continue
        remapped = _remap_pattern(op, upstream)
        if remapped is None:
            continue

        feeder = upstream.inputs[0].producer
        if feeder is None:
            continue
        feed_edge = next(
            e for e in feeder.outputs if e.consumer is upstream
        )
        mid_edge = upstream.outputs[0]
        out_edges = list(op.outputs)

        plan.disconnect(feed_edge)
        plan.disconnect(mid_edge)
        for edge in out_edges:
            plan.disconnect(edge)
        plan.remove_operator(op.name)
        pushed = Select(
            op.name, upstream.mapping.input_schemas[0], remapped
        )
        plan.add(pushed)
        plan.connect_like(feeder, pushed, feed_edge, port=0)
        plan.connect_like(pushed, upstream, mid_edge, port=0)
        for edge in out_edges:
            plan.connect_like(upstream, edge.consumer, edge)
        report.pushed.append((op.name, upstream.name))
        return True
    return False


def push_guards(plan: QueryPlan, report) -> None:
    """Swap pattern SELECTs upstream until no legal swap remains.

    Termination: each swap strictly decreases the number of non-SELECT
    stages upstream of some SELECT, and SELECTs never swap with SELECTs,
    so the pass reaches a fixpoint in at most |edges| x |selects| steps
    (the bound below is a safety net, never the stop condition).
    """
    shard_bound = shard_bound_names(plan)
    for _ in range(len(plan) * len(plan) + 1):
        if not _swap_once(plan, shard_bound, report):
            return
